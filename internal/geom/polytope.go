package geom

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"toprr/internal/vec"
)

// Vertex is a polytope vertex: its coordinates plus the bitset of
// halfspace indices (into Polytope.HS) tight at it.
type Vertex struct {
	Point vec.Vector
	Tight Bits
}

// Polytope is a bounded convex polytope in Dim dimensions, stored in the
// hybrid facet-based representation: the bounding halfspaces (H-rep) and
// the complete vertex set (V-rep) with per-vertex tight sets. Instances
// are immutable after construction; Split and Clip return new polytopes.
type Polytope struct {
	Dim   int
	HS    []Halfspace
	Verts []Vertex
}

// NewBox returns the axis-aligned box [lo, hi] as a polytope, with the
// 2*Dim bounding halfspaces and all 2^Dim corner vertices. It panics on
// inconsistent bounds or an empty interval in any axis.
func NewBox(lo, hi vec.Vector) *Polytope {
	d := len(lo)
	if len(hi) != d {
		panic("geom: NewBox bounds dimension mismatch")
	}
	hs := make([]Halfspace, 0, 2*d)
	for j := 0; j < d; j++ {
		if hi[j] < lo[j]-Eps {
			panic(fmt.Sprintf("geom: NewBox empty interval on axis %d", j))
		}
		aLo := vec.New(d)
		aLo[j] = 1 // x[j] >= lo[j]
		hs = append(hs, Halfspace{A: aLo, B: lo[j]})
		aHi := vec.New(d)
		aHi[j] = -1 // x[j] <= hi[j]
		hs = append(hs, Halfspace{A: aHi, B: -hi[j]})
	}
	// Enumerate the 2^d corners.
	pts := make([]vec.Vector, 0, 1<<uint(d))
	for mask := 0; mask < 1<<uint(d); mask++ {
		p := vec.New(d)
		for j := 0; j < d; j++ {
			if mask&(1<<uint(j)) != 0 {
				p[j] = hi[j]
			} else {
				p[j] = lo[j]
			}
		}
		pts = append(pts, p)
	}
	return newFromParts(d, hs, pts)
}

// FromHalfspaces intersects the given halfspaces with the bounding box
// [lo, hi] and returns the resulting polytope, or an empty polytope if
// the intersection is empty. This is the package's halfspace-intersection
// entry point (the qhull replacement).
func FromHalfspaces(hs []Halfspace, lo, hi vec.Vector) *Polytope {
	p := NewBox(lo, hi)
	for _, h := range hs {
		p = p.Clip(h)
		if p.IsEmpty() {
			return p
		}
	}
	return p
}

// newFromParts builds a polytope from candidate halfspaces and candidate
// vertex points: it deduplicates points, recomputes every tight set, and
// drops halfspaces that are tight at no vertex (which, for a bounded
// polytope, are provably redundant).
func newFromParts(dim int, hs []Halfspace, pts []vec.Vector) *Polytope {
	// Deduplicate vertex points on a quantized grid.
	seen := make(map[string]bool, len(pts))
	uniq := pts[:0:0]
	for _, p := range pts {
		k := p.Key(vertexQuantum)
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, p)
	}
	if len(uniq) == 0 {
		return &Polytope{Dim: dim}
	}
	// Keep only halfspaces tight at some vertex; every facet of a
	// bounded polytope carries at least one vertex, so never-tight
	// halfspaces cannot be facets.
	type tightInfo struct {
		h     Halfspace
		verts []int
	}
	kept := make([]tightInfo, 0, len(hs))
	for _, h := range hs {
		ti := tightInfo{h: h}
		for vi, p := range uniq {
			if almostEqual(h.A.Dot(p), h.B) {
				ti.verts = append(ti.verts, vi)
			}
		}
		if len(ti.verts) > 0 {
			kept = append(kept, ti)
		}
	}
	verts := make([]Vertex, len(uniq))
	for i, p := range uniq {
		verts[i] = Vertex{Point: p, Tight: NewBits(len(kept))}
	}
	out := make([]Halfspace, len(kept))
	for hi, ti := range kept {
		out[hi] = ti.h
		for _, vi := range ti.verts {
			verts[vi].Tight.Set(hi)
		}
	}
	return &Polytope{Dim: dim, HS: out, Verts: verts}
}

// IsEmpty reports whether the polytope has no vertices (empty set).
func (p *Polytope) IsEmpty() bool { return len(p.Verts) == 0 }

// NumVertices returns the number of vertices.
func (p *Polytope) NumVertices() int { return len(p.Verts) }

// VertexPoints returns the vertex coordinates. The returned slice aliases
// the polytope's internal vectors and must not be mutated.
func (p *Polytope) VertexPoints() []vec.Vector {
	out := make([]vec.Vector, len(p.Verts))
	for i, v := range p.Verts {
		out[i] = v.Point
	}
	return out
}

// Contains reports whether x lies in the polytope (within Eps).
func (p *Polytope) Contains(x vec.Vector) bool {
	if p.IsEmpty() {
		return false
	}
	for _, h := range p.HS {
		if h.Eval(x) < -Eps {
			return false
		}
	}
	return true
}

// Centroid returns the mean of the vertices, a point inside the polytope
// (strictly interior when the polytope is full-dimensional).
func (p *Polytope) Centroid() vec.Vector {
	return vec.Centroid(p.VertexPoints())
}

// SamplePoint returns a random point of the polytope as a random convex
// combination of its vertices. The distribution is not uniform over the
// volume; it is intended for property tests and probes.
func (p *Polytope) SamplePoint(rng *rand.Rand) vec.Vector {
	if p.IsEmpty() {
		panic("geom: SamplePoint on empty polytope")
	}
	w := make([]float64, len(p.Verts))
	var sum float64
	for i := range w {
		w[i] = rng.ExpFloat64()
		sum += w[i]
	}
	x := vec.New(p.Dim)
	for i, v := range p.Verts {
		f := w[i] / sum
		for j := range x {
			x[j] += f * v.Point[j]
		}
	}
	return x
}

// adjacent reports whether vertices i and j share an edge, using the
// standard combinatorial test: they are adjacent iff no third vertex's
// tight set contains the intersection of their tight sets. The popcount
// pre-filter (an edge of a Dim-polytope lies on at least Dim-1 facets)
// rejects most non-edges cheaply. The test is allocation-free: it is the
// innermost loop of Split, which dominates high-dimensional runs.
func (p *Polytope) adjacent(i, j int) bool {
	ti, tj := p.Verts[i].Tight, p.Verts[j].Tight
	cnt := 0
	for w := range ti {
		cnt += onesCount64(ti[w] & tj[w])
	}
	if cnt < p.Dim-1 {
		return false
	}
	for k := range p.Verts {
		if k == i || k == j {
			continue
		}
		tk := p.Verts[k].Tight
		contains := true
		for w := range ti {
			if ti[w]&tj[w]&^tk[w] != 0 {
				contains = false
				break
			}
		}
		if contains {
			return false
		}
	}
	return true
}

// Split cuts the polytope by the boundary hyperplane of h and returns
// the two closed sides: neg = {x in P : h.A·x <= h.B} and
// pos = {x in P : h.A·x >= h.B}. Either side may be empty (when the
// hyperplane misses the interior). The input polytope is unchanged.
func (p *Polytope) Split(h Halfspace) (neg, pos *Polytope) {
	if p.IsEmpty() {
		return p, p
	}
	evals := make([]float64, len(p.Verts))
	var nNeg, nPos, nOn int
	for i, v := range p.Verts {
		evals[i] = h.Eval(v.Point)
		switch Side(evals[i]) {
		case -1:
			nNeg++
		case 1:
			nPos++
		default:
			nOn++
		}
	}
	// When the hyperplane does not cross the interior, the far side is
	// empty unless some vertices lie exactly on the boundary — then that
	// side is the (lower-dimensional) face they span. Keeping the face
	// matters: an option region can legitimately collapse to a facet or
	// a single point (e.g. when an existing option sits at the top
	// corner of the option space).
	if nNeg == 0 || nPos == 0 {
		var facePts []vec.Vector
		for i, v := range p.Verts {
			if Side(evals[i]) == 0 {
				facePts = append(facePts, v.Point)
			}
		}
		face := &Polytope{Dim: p.Dim}
		if len(facePts) > 0 {
			faceHS := append(append([]Halfspace(nil), p.HS...), h, h.Flip())
			face = newFromParts(p.Dim, faceHS, facePts)
		}
		if nNeg == 0 { // entirely on the >= side
			return face, p
		}
		return p, face // entirely on the <= side
	}
	// New vertices on the cutting hyperplane: one per crossing edge.
	var cut []vec.Vector
	for i := range p.Verts {
		if Side(evals[i]) != -1 {
			continue
		}
		for j := range p.Verts {
			if Side(evals[j]) != 1 {
				continue
			}
			if !p.adjacent(i, j) {
				continue
			}
			t := crossingParam(evals[i], evals[j])
			cut = append(cut, p.Verts[i].Point.Lerp(p.Verts[j].Point, t))
		}
	}
	var negPts, posPts []vec.Vector
	for i, v := range p.Verts {
		switch Side(evals[i]) {
		case -1:
			negPts = append(negPts, v.Point)
		case 1:
			posPts = append(posPts, v.Point)
		default: // on the hyperplane: belongs to both sides
			negPts = append(negPts, v.Point)
			posPts = append(posPts, v.Point)
		}
	}
	negPts = append(negPts, cut...)
	posPts = append(posPts, cut...)

	negHS := append(append([]Halfspace(nil), p.HS...), h.Flip())
	posHS := append(append([]Halfspace(nil), p.HS...), h)
	return newFromParts(p.Dim, negHS, negPts), newFromParts(p.Dim, posHS, posPts)
}

// Clip intersects the polytope with halfspace h (keeping the >= side).
// When every vertex already satisfies h, the receiver itself is returned
// unchanged — this redundancy fast path is what keeps the assembly of oR
// cheap even with thousands of impact halfspaces.
func (p *Polytope) Clip(h Halfspace) *Polytope {
	if p.IsEmpty() {
		return p
	}
	violated := false
	for _, v := range p.Verts {
		if h.Eval(v.Point) < -Eps {
			violated = true
			break
		}
	}
	if !violated {
		return p
	}
	_, pos := p.Split(h)
	return pos
}

// Facet is a polytope facet in the paper's facet-based representation: a
// bounding halfspace together with the indices of the vertices on it.
type Facet struct {
	H        Halfspace
	VertexIx []int
}

// Facets enumerates the facets: halfspaces tight at >= Dim vertices.
// (Halfspaces touching the polytope at a lower-dimensional face are
// reported too when degenerate geometry makes them indistinguishable;
// callers treat the list as a superset of the true facets.)
func (p *Polytope) Facets() []Facet {
	var out []Facet
	for hi, h := range p.HS {
		var ix []int
		for vi, v := range p.Verts {
			if v.Tight.Get(hi) {
				ix = append(ix, vi)
			}
		}
		if len(ix) >= p.Dim {
			out = append(out, Facet{H: h, VertexIx: ix})
		}
	}
	return out
}

// CanonicalKey returns a deterministic identity string for the polytope
// built from its sorted, quantized vertex keys. Two polytopes with the
// same vertex set (up to tolerance) share a key; used by tests to compare
// results across algorithms.
func (p *Polytope) CanonicalKey() string {
	keys := make([]string, len(p.Verts))
	for i, v := range p.Verts {
		keys[i] = v.Point.Key(vertexQuantum * 10)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// BoundingBox returns the component-wise min and max over the vertices.
func (p *Polytope) BoundingBox() (lo, hi vec.Vector) {
	if p.IsEmpty() {
		panic("geom: BoundingBox of empty polytope")
	}
	lo = p.Verts[0].Point.Clone()
	hi = p.Verts[0].Point.Clone()
	for _, v := range p.Verts[1:] {
		for j, x := range v.Point {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	return lo, hi
}
