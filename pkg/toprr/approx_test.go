package toprr_test

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"toprr/internal/race"
	"toprr/internal/topk"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// exactKthScore brute-forces TopK(w) over the snapshot.
func exactKthScore(e *toprr.Engine, w vec.Vector, k int) float64 {
	sc := e.Snapshot().Scorer
	scores := make([]float64, sc.Len())
	for i := range scores {
		scores[i] = topk.ScorePoint(w, sc.Point(i))
	}
	sort.Float64s(scores)
	return scores[len(scores)-k]
}

// exactRank brute-forces the rank a hypothetical option at p would take
// at preference w: one plus the options scoring strictly above it.
func exactRank(e *toprr.Engine, w, p vec.Vector) int {
	sc := e.Snapshot().Scorer
	sq := topk.ScorePoint(w, p)
	rank := 1
	for i := 0; i < sc.Len(); i++ {
		if topk.ScorePoint(w, sc.Point(i)) > sq {
			rank++
		}
	}
	return rank
}

// randPref draws a valid reduced preference: w >= 0, Σw <= 1.
func randPref(rng *rand.Rand, m int) vec.Vector {
	w := vec.New(m)
	rem := 1.0
	for j := range w {
		w[j] = rng.Float64() * rem / float64(m)
		rem -= w[j]
	}
	return w
}

// TestApproxRankOracle: every returned interval contains the exact
// TopK(w); certified answers are exact, uncertified ones fell back and
// are exact too; the counters account for every call.
func TestApproxRankOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const d = 4
	for _, mk := range []struct {
		name string
		pts  []vec.Vector
	}{
		{"dominated", dominatedMarket(rng, 800, d)},
		{"uniform", randomMarket(rng, 800, d)},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			engine := toprr.NewEngine(mk.pts, toprr.WithShards(2))
			calls := 0
			for trial := 0; trial < 40; trial++ {
				w := randPref(rng, d-1)
				k := 1 + rng.Intn(20)
				est, err := engine.ApproxRank(w, k)
				if err != nil {
					t.Fatal(err)
				}
				calls++
				exact := exactKthScore(engine, w, k)
				if exact < est.Lo-1e-9 || exact > est.Hi+1e-9 {
					t.Fatalf("trial %d: exact %v outside [%v, %v] (certified=%v)", trial, exact, est.Lo, est.Hi, est.Certified)
				}
				if est.Lo != est.Hi {
					t.Fatalf("trial %d: rank interval did not collapse: [%v, %v]", trial, est.Lo, est.Hi)
				}
			}
			cs := engine.CacheStats()
			if cs.SketchCertified+cs.SketchFallbacks != calls {
				t.Fatalf("counters %d+%d != %d calls", cs.SketchCertified, cs.SketchFallbacks, calls)
			}
			if mk.name == "dominated" && cs.SketchCertified == 0 {
				t.Error("no certified answers on dominated-heavy data")
			}
		})
	}
}

// TestApproxRankFallsBackAfterMutation: an Apply advances the sketch
// plane with the store, so the very next ApproxRank still answers
// correctly (either path), and a deliberate mismatch is impossible to
// observe from the outside — the oracle holds across mutations.
func TestApproxRankAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d = 4
	engine := toprr.NewEngine(dominatedMarket(rng, 500, d))
	ctx := context.Background()
	for round := 0; round < 6; round++ {
		w := randPref(rng, d-1)
		k := 1 + rng.Intn(10)
		est, err := engine.ApproxRank(w, k)
		if err != nil {
			t.Fatal(err)
		}
		exact := exactKthScore(engine, w, k)
		if exact < est.Lo-1e-9 || exact > est.Hi+1e-9 {
			t.Fatalf("round %d: exact %v outside [%v, %v]", round, exact, est.Lo, est.Hi)
		}
		var ops []toprr.Op
		if round%2 == 0 {
			ops = []toprr.Op{toprr.Insert(dominatedPoint(rng, d)), toprr.Insert(dominatedPoint(rng, d))}
		} else {
			ops = []toprr.Op{toprr.Update(rng.Intn(engine.Len()), dominatedPoint(rng, d))}
		}
		if _, err := engine.Apply(ctx, ops); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApproxImpactOracle: the rank interval always contains the exact
// rank, and a certified interval decides K-membership consistently
// with it.
func TestApproxImpactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const d = 4
	engine := toprr.NewEngine(dominatedMarket(rng, 800, d), toprr.WithShards(2))
	certified := 0
	for trial := 0; trial < 60; trial++ {
		q := toprr.ImpactQuery{
			W: randPref(rng, d-1),
			P: dominatedPoint(rng, d),
			K: 1 + rng.Intn(20),
		}
		est, err := engine.ApproxImpact(q)
		if err != nil {
			t.Fatal(err)
		}
		rank := exactRank(engine, q.W, q.P)
		if float64(rank) < est.Lo || float64(rank) > est.Hi {
			t.Fatalf("trial %d: exact rank %d outside [%v, %v]", trial, rank, est.Lo, est.Hi)
		}
		if est.Certified {
			certified++
			member := rank <= q.K
			if member != (est.Hi <= float64(q.K)) {
				t.Fatalf("trial %d: certificate decides membership %v, exact rank %d vs K=%d", trial, est.Hi <= float64(q.K), rank, q.K)
			}
		} else if est.Lo != est.Hi {
			t.Fatalf("trial %d: fallback did not return the exact rank: [%v, %v]", trial, est.Lo, est.Hi)
		}
	}
	if certified == 0 {
		t.Error("no certified impact answers on dominated-heavy data")
	}
}

// TestApproxValidation: the approximate entry points enforce the same
// contract as RankAt.
func TestApproxValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	engine := toprr.NewEngine(randomMarket(rng, 50, 3))
	if _, err := engine.ApproxRank(vec.Of(0.2, 0.2), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := engine.ApproxRank(vec.Of(0.2), 3); err == nil {
		t.Error("wrong preference dimension accepted")
	}
	if _, err := engine.ApproxRank(vec.Of(-0.1, 0.2), 3); err == nil {
		t.Error("negative preference accepted")
	}
	if _, err := engine.ApproxImpact(toprr.ImpactQuery{W: vec.Of(0.2, 0.2), P: vec.Of(0.5), K: 3}); err == nil {
		t.Error("wrong option dimension accepted")
	}
}

// TestApproxRankZeroAlloc: the warm certified path must not allocate —
// the microsecond-budget contract of the fast path.
func TestApproxRankZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(15))
	const d = 4
	engine := toprr.NewEngine(dominatedMarket(rng, 800, d))
	w := vec.Of(0.25, 0.25, 0.25)
	const k = 5

	est, err := engine.ApproxRank(w, k)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Certified {
		t.Fatal("warm-up call not certified; the zero-alloc gate needs the certified path")
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := engine.ApproxRank(w, k); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm certified ApproxRank allocates %.1f objects per call, want 0", avg)
	}
}

// TestRegistrySketchesSurviveEviction: an idle-evicted tenant reopened
// on the next acquire rebuilds its sketch tier from the recovered
// snapshot — the approximate fast path works immediately after reopen.
func TestRegistrySketchesSurviveEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const d = 4
	root := t.TempDir()
	r, err := toprr.NewRegistry(toprr.WithRegistryRoot(root), toprr.WithIdleTTL(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	eng, err := r.Create("alpha", dominatedMarket(rng, 600, d))
	if err != nil {
		t.Fatal(err)
	}
	w := vec.Of(0.25, 0.25, 0.25)
	est, err := eng.ApproxRank(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Certified {
		t.Fatal("fresh tenant not certified on dominated-heavy data")
	}
	before := est

	deadline := time.Now().Add(5 * time.Second)
	for {
		r.EvictIdle()
		if infos := r.List(); len(infos) == 1 && !infos[0].Open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset never evicted: %+v", r.List())
		}
		time.Sleep(5 * time.Millisecond)
	}

	eng2, release, err := r.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if eng2 == eng {
		t.Fatal("eviction did not replace the engine instance")
	}
	est2, err := eng2.ApproxRank(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !est2.Certified {
		t.Fatal("reopened tenant lost its certified fast path")
	}
	if est2.Lo != before.Lo || est2.Hi != before.Hi {
		t.Fatalf("reopened answer [%v, %v] differs from original [%v, %v]", est2.Lo, est2.Hi, before.Lo, before.Hi)
	}
	if cs := eng2.CacheStats(); cs.SketchEntries == 0 {
		t.Error("reopened engine has an empty sketch tier")
	}
}
