package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"toprr/internal/dataset"
	"toprr/pkg/toprr"
)

func TestRandomRegionInsideSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{1, 3, 5, 7} {
		for iter := 0; iter < 50; iter++ {
			wr := RandomRegion(m, 0.01, 1, rng)
			if wr.IsEmpty() {
				t.Fatalf("m=%d: empty region", m)
			}
			for _, v := range wr.VertexPoints() {
				if v.Sum() > 1+1e-9 {
					t.Fatalf("m=%d: vertex %v outside simplex", m, v)
				}
				for _, x := range v {
					if x < -1e-9 || x > 1+1e-9 {
						t.Fatalf("m=%d: vertex %v outside unit box", m, v)
					}
				}
			}
		}
	}
}

func TestRandomRegionSideLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	wr := RandomRegion(3, 0.05, 1, rng)
	lo, hi := wr.BoundingBox()
	for j := range lo {
		if s := hi[j] - lo[j]; s > 0.05+1e-9 {
			t.Errorf("side %d = %v, want <= 0.05", j, s)
		}
	}
}

func TestRandomRegionElongation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wr := RandomRegion(3, 0.05, 4, rng)
	lo, hi := wr.BoundingBox()
	sides := make([]float64, 3)
	long, short := 0.0, 1.0
	for j := range sides {
		sides[j] = hi[j] - lo[j]
		if sides[j] > long {
			long = sides[j]
		}
		if sides[j] < short {
			short = sides[j]
		}
	}
	if long/short < 3.5 {
		t.Errorf("elongation ratio %v, want ~4 (sides %v)", long/short, sides)
	}
	// Constant volume: product of sides == sigma^m.
	vol := sides[0] * sides[1] * sides[2]
	want := 0.05 * 0.05 * 0.05
	if vol < want*0.9 || vol > want*1.1 {
		t.Errorf("volume %v, want ~%v", vol, want)
	}
}

func TestRunAlgAggregates(t *testing.T) {
	ds := dataset.Generate(dataset.Independent, 2000, 3, 5)
	s := Scale{N: 1, Queries: 2}
	regions := s.Regions(2, 0.02, 1, 9)
	m := RunAlg(ds.Pts, 3, regions, toprr.Options{Alg: toprr.TASStar})
	if m.Failed != 0 {
		t.Fatalf("unexpected failures: %d", m.Failed)
	}
	if m.Time <= 0 || m.Filtered <= 0 || m.Vall <= 0 {
		t.Errorf("aggregates not populated: %+v", m)
	}
}

func TestRunAlgReportsFailures(t *testing.T) {
	ds := dataset.Generate(dataset.Anticorrelated, 3000, 4, 5)
	s := Scale{N: 1, Queries: 1}
	regions := s.Regions(3, 0.1, 1, 9)
	m := RunAlg(ds.Pts, 10, regions, toprr.Options{Alg: toprr.TAS, MaxRegions: 1})
	if m.Failed != 1 {
		t.Errorf("expected the MaxRegions valve to trip, got %+v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Caption: "caption",
		Header:  []string{"col", "value"},
		Rows:    [][]string{{"a", "1"}, {"longer-name", "2"}},
	}
	out := tab.String()
	for _, want := range []string{"== T: caption ==", "longer-name", "col"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("table has %d lines, want 5", len(lines))
	}
}

func TestScaleN(t *testing.T) {
	s := Scale{N: 0.5, Queries: 1}
	if got := s.n(100000); got != 50000 {
		t.Errorf("n = %d, want 50000", got)
	}
	if got := s.n(100); got != 1000 { // floor
		t.Errorf("floor n = %d, want 1000", got)
	}
}

func TestFindAndAll(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("expected 23 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Caption == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Find("fig9a"); !ok {
		t.Error("fig9a should exist")
	}
	if _, ok := Find("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

// TestSmallExperimentsRun executes the quick experiment drivers end to
// end at a tiny scale, asserting each yields non-empty tables.
func TestSmallExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers take seconds")
	}
	s := Scale{N: 0.01, Queries: 1}
	for _, id := range []string{"fig7", "fig12", "fig13", "fig14"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		start := time.Now()
		tables := e.Run(s)
		if len(tables) == 0 {
			t.Fatalf("%s returned no tables", id)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced an empty table %s", id, tab.ID)
			}
		}
		t.Logf("%s ok in %v", id, time.Since(start))
	}
}

func TestCellAnnotation(t *testing.T) {
	s := Scale{Timeout: 30 * time.Second}
	if got := s.cell(Measurement{Failed: 3}, 3); got != ">30s" {
		t.Errorf("all-failed cell = %q", got)
	}
	if got := s.cell(Measurement{Time: time.Second, Failed: 1}, 3); got != "1s (1/3 failed)" {
		t.Errorf("partial-failure cell = %q", got)
	}
	if got := s.cell(Measurement{Time: time.Second}, 3); got != "1s" {
		t.Errorf("clean cell = %q", got)
	}
	noTimeout := Scale{}
	if got := noTimeout.cell(Measurement{Failed: 2}, 2); got != "budget exceeded" {
		t.Errorf("budget cell = %q", got)
	}
}

func TestHumanN(t *testing.T) {
	if humanN(25000) != "25k" || humanN(1600000) != "1.6M" {
		t.Errorf("humanN wrong: %q %q", humanN(25000), humanN(1600000))
	}
}

func TestDGrid(t *testing.T) {
	small := Scale{N: 0.25}
	if g := small.dGrid(); len(g) != 4 || g[len(g)-1] != 8 {
		t.Errorf("reduced-scale d grid = %v", g)
	}
	full := Scale{N: 1}
	if g := full.dGrid(); len(g) != len(GridD) {
		t.Errorf("full-scale d grid = %v", g)
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtDur(1500 * time.Millisecond); got != "1.5s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtF(3.14159); got != "3.1" {
		t.Errorf("fmtF = %q", got)
	}
}

func TestPatchExperimentInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers take seconds")
	}
	// Tiny scale clamps to the 1000-point floor; the ratio floor must
	// hold even there (the smoke-scale CI run has far more headroom).
	tables := Patch(Scale{N: 0.001, Queries: 1})
	if len(tables) != 1 || len(tables[0].Rows) != len(PatchShardGrid) {
		t.Fatalf("patch experiment shape: %+v", tables)
	}
	for _, row := range tables[0].Rows {
		var shards, entries, patchScored, coldScored, drops int
		var ratio float64
		if _, err := fmt.Sscanf(strings.Join(row, " "), "%d %d %d %d %f %d",
			&shards, &entries, &patchScored, &coldScored, &ratio, &drops); err != nil {
			t.Fatalf("unparseable row %v: %v", row, err)
		}
		if entries == 0 || patchScored == 0 {
			t.Errorf("shards=%d: no memo entries exercised: %v", shards, row)
		}
		if ratio < 5 {
			t.Errorf("shards=%d: scored ratio %.1f below the 5x floor", shards, ratio)
		}
		if drops != 0 {
			t.Errorf("shards=%d: untouched insert dropped %d entries", shards, drops)
		}
	}
}
