// Monochromatic reverse top-k: an option's impact region in preference
// space (after Tang et al., SIGMOD 2017 — reference [41] of the paper).
//
// TopRR asks "where must a NEW option sit to always rank high?". The
// reverse question is also answered by the same kIPR partitioning
// machinery: for an EXISTING option, in which parts of the preference
// region does it already rank among the top-k? This example maps the
// impact regions of each laptop of the Figure 1 dataset.
//
// Run with: go run ./examples/reversetopk
package main

import (
	"context"
	"fmt"
	"log"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	laptops := []vec.Vector{
		vec.Of(0.9, 0.4), // p1
		vec.Of(0.7, 0.9), // p2
		vec.Of(0.6, 0.2), // p3
		vec.Of(0.3, 0.8), // p4
		vec.Of(0.2, 0.3), // p5
		vec.Of(0.1, 0.1), // p6
	}
	wr := toprr.PrefBox(vec.Of(0.2), vec.Of(0.8))
	k := 3

	fmt.Printf("impact regions within wR=[0.2, 0.8] for k=%d\n", k)
	fmt.Println("(the share of the targeted clientele that already ranks each laptop top-3)")
	for pi := range laptops {
		regions, err := toprr.ReverseTopK(context.Background(), laptops, k, wr, pi, toprr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		var spans []string
		for _, r := range regions {
			lo, hi := r.BoundingBox()
			total += hi[0] - lo[0]
			spans = append(spans, fmt.Sprintf("[%.3f, %.3f]", lo[0], hi[0]))
		}
		share := total / 0.6 * 100 // |wR| = 0.6
		fmt.Printf("  p%d %v: %5.1f%% of wR  %v\n", pi+1, laptops[pi], share, spans)
	}
}
