package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// server is the HTTP front end over a dataset registry. Every dataset
// route acquires its tenant for the duration of the request — pinning
// it against idle eviction — and every query pins the dataset
// generation current when it arrives, so a request is never torn across
// an Apply landing mid-solve. The pre-tenancy /v1/{solve,batch,ops}
// routes alias the "default" dataset, so existing clients keep working.
type server struct {
	reg      *toprr.Registry
	timeout  time.Duration // per-request deadline (0 = none; watch streams are exempt)
	maxBody  int64         // request-body cap in bytes
	start    time.Time
	draining chan struct{} // closed on shutdown: watch streams say bye and end
}

// defaultDataset is the tenant behind the legacy single-dataset routes.
const defaultDataset = "default"

// newServer wires the /v1 API over a registry.
func newServer(reg *toprr.Registry, timeout time.Duration, maxBody int64) *server {
	return &server{reg: reg, timeout: timeout, maxBody: maxBody, start: time.Now(), draining: make(chan struct{})}
}

// drainWatches ends every open watch stream with a terminal event.
// http.Server.Shutdown waits for in-flight requests, and an SSE stream
// never ends on its own — register this via RegisterOnShutdown so
// graceful shutdown doesn't burn the whole drain budget on watchers.
func (s *server) drainWatches() { close(s.draining) }

// drainFabric quiesces every resident engine's fabric connections
// within the drain budget: new remote fetches fail fast (their shards
// answer locally), in-flight requests finish, then the worker
// connections close with a clean FIN instead of the RST that
// reg.Close()'s teardown would send mid-request. Registered via
// RegisterOnShutdown, like drainWatches, so it overlaps the HTTP drain
// window. Engines without coordinator mode no-op.
func (s *server) drainFabric(budget time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	for _, info := range s.reg.List() {
		if !info.Open {
			continue
		}
		eng, release, err := s.reg.Acquire(info.Name)
		if err != nil {
			continue
		}
		_ = eng.DrainFabric(ctx)
		release()
	}
}

// datasetsPrefix roots the per-dataset route tree.
const datasetsPrefix = "/v1/datasets"

// ServeHTTP routes by hand (the route set is tiny and the error
// contract strict): unknown routes get a JSON 404 and wrong methods a
// JSON 405, never the mux defaults.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "/v1/healthz":
		s.handleHealthz(w, r)
	case path == "/v1/solve":
		s.withDataset(w, r, defaultDataset, s.handleSolve)
	case path == "/v1/batch":
		s.withDataset(w, r, defaultDataset, s.handleBatch)
	case path == "/v1/ops":
		s.withDataset(w, r, defaultDataset, s.handleOps)
	case path == "/v1/stats":
		s.handleStats(w, r)
	case path == datasetsPrefix:
		s.handleDatasets(w, r)
	case strings.HasPrefix(path, datasetsPrefix+"/"):
		name, sub, _ := strings.Cut(path[len(datasetsPrefix)+1:], "/")
		if err := toprr.ValidateDatasetName(name); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		switch sub {
		case "":
			s.handleDatasetDelete(w, r, name)
		case "solve":
			s.withDataset(w, r, name, s.handleSolve)
		case "batch":
			s.withDataset(w, r, name, s.handleBatch)
		case "ops":
			s.withDataset(w, r, name, s.handleOps)
		case "watch":
			s.withDataset(w, r, name, s.handleWatch)
		case "stats":
			s.withDataset(w, r, name, func(w http.ResponseWriter, r *http.Request, eng *toprr.Engine) {
				s.handleDatasetStats(w, r, name, eng)
			})
		default:
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown route %s", r.URL.Path))
		}
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown route %s", r.URL.Path))
	}
}

// withDataset acquires the named tenant around fn, mapping registry
// errors: unknown dataset 404, closing registry 503.
func (s *server) withDataset(w http.ResponseWriter, r *http.Request, name string, fn func(http.ResponseWriter, *http.Request, *toprr.Engine)) {
	eng, release, err := s.reg.Acquire(name)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, toprr.ErrUnknownDataset):
			code = http.StatusNotFound
		case errors.Is(err, toprr.ErrRegistryClosed):
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	defer release()
	fn(w, r, eng)
}

// requestCtx derives the request context bounded by the server's
// per-request deadline.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// decodeBody decodes a JSON request body under the size cap (-max-body)
// so one oversized POST cannot buffer the daemon into the ground;
// decode failures past the cap surface as ordinary 400s.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(v)
}

// errorJSON is every error response's body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// solveStatus maps a solve error to an HTTP status: request deadlines
// become 504, client disconnects 503, everything else a server error.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleHealthz answers GET /v1/healthz: a cheap liveness probe that
// touches no dataset (so it stays green while tenants page in and out)
// and reports build info — daemon version and Go toolchain — so a fleet
// operator can spot version skew from the probe alone.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	infos := s.reg.List()
	open := 0
	for _, info := range infos {
		if info.Open {
			open++
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Status       string  `json:"status"`
		Version      string  `json:"version"`
		GoVersion    string  `json:"go_version"`
		Datasets     int     `json:"datasets"`
		OpenDatasets int     `json:"open_datasets"`
		UptimeMS     float64 `json:"uptime_ms"`
	}{"ok", version, runtime.Version(), len(infos), open, float64(time.Since(s.start)) / float64(time.Millisecond)})
}

// queryJSON is the wire form of one TopRR query: rank threshold k and
// the preference box [lo, hi] in the (d-1)-dimensional preference
// space.
type queryJSON struct {
	K       int       `json:"k"`
	Lo      []float64 `json:"lo"`
	Hi      []float64 `json:"hi"`
	Alg     string    `json:"alg,omitempty"`
	Workers int       `json:"workers,omitempty"`
}

// parseAlg maps the wire algorithm name to the solver constant.
func parseAlg(name string) (toprr.Algorithm, error) {
	switch strings.ToUpper(name) {
	case "", "TAS*", "TASSTAR", "TAS-STAR":
		return toprr.TASStar, nil
	case "TAS":
		return toprr.TAS, nil
	case "PAC":
		return toprr.PAC, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

// prefBox builds the preference region, converting PrefBox's panic on an
// empty region into an error.
func prefBox(lo, hi []float64) (p *geom.Polytope, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invalid preference box: %v", r)
		}
	}()
	return toprr.PrefBox(vec.Vector(lo), vec.Vector(hi)), nil
}

// buildQuery validates a wire query against a pinned snapshot.
func buildQuery(snap toprr.Snapshot, qj queryJSON) (toprr.Query, error) {
	m := snap.Scorer.PrefDim()
	if len(qj.Lo) != m || len(qj.Hi) != m {
		return toprr.Query{}, fmt.Errorf("lo/hi need %d components (d-1), got %d/%d", m, len(qj.Lo), len(qj.Hi))
	}
	if qj.K <= 0 || qj.K > snap.Scorer.Len() {
		return toprr.Query{}, fmt.Errorf("k=%d out of range for %d options", qj.K, snap.Scorer.Len())
	}
	wr, err := prefBox(qj.Lo, qj.Hi)
	if err != nil {
		return toprr.Query{}, err
	}
	q := toprr.Query{K: qj.K, WR: wr}
	if qj.Alg != "" || qj.Workers > 0 {
		alg, err := parseAlg(qj.Alg)
		if err != nil {
			return toprr.Query{}, err
		}
		q.Options = &toprr.Options{Alg: alg, Workers: qj.Workers}
	}
	return q, nil
}

// constraintJSON is one halfspace a·o >= b of oR's H-representation.
type constraintJSON struct {
	A []float64 `json:"a"`
	B float64   `json:"b"`
}

// resultJSON is the wire form of one TopRR result: the exact
// H-representation of oR, its explicit vertices when enumerated within
// budget, and the solve instrumentation.
type resultJSON struct {
	Constraints []constraintJSON `json:"constraints"`
	Vertices    [][]float64      `json:"vertices,omitempty"`
	Stats       solveStatsJSON   `json:"stats"`
}

type solveStatsJSON struct {
	InputOptions    int     `json:"input_options"`
	FilteredOptions int     `json:"filtered_options"`
	Regions         int     `json:"regions"`
	Splits          int     `json:"splits"`
	VallSize        int     `json:"vall_size"`
	TopKQueries     int     `json:"topk_queries"`
	TopKMisses      int     `json:"topk_misses"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

func resultToJSON(res *toprr.Result) resultJSON {
	out := resultJSON{
		Constraints: make([]constraintJSON, len(res.ORConstraints)),
		Stats: solveStatsJSON{
			InputOptions:    res.Stats.InputOptions,
			FilteredOptions: res.Stats.FilteredOptions,
			Regions:         res.Stats.Regions,
			Splits:          res.Stats.Splits,
			VallSize:        res.Stats.VallSize,
			TopKQueries:     res.Stats.TopKQueries,
			TopKMisses:      res.Stats.TopKMisses,
			ElapsedMS:       float64(res.Stats.Elapsed) / float64(time.Millisecond),
		},
	}
	for i, h := range res.ORConstraints {
		out.Constraints[i] = constraintJSON{A: h.A, B: h.B}
	}
	if res.OR != nil {
		for _, v := range res.OR.VertexPoints() {
			out.Vertices = append(out.Vertices, v)
		}
	}
	return out
}

// handleSolve answers POST .../solve: one query against the generation
// current at arrival.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request, eng *toprr.Engine) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var qj queryJSON
	if err := s.decodeBody(w, r, &qj); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	snap := eng.Snapshot()
	q, err := buildQuery(snap, qj)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("approx") == "1" {
		s.handleApproxSolve(w, eng, snap, q)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := eng.SolveAt(ctx, snap, q)
	if err != nil {
		writeErr(w, solveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Generation uint64     `json:"generation"`
		Result     resultJSON `json:"result"`
	}{uint64(snap.Gen), resultToJSON(res)})
}

// approxVertexJSON is one preference vertex's TopK(w) interval from the
// sketch tier: the exact k-th score lies in [lo, hi]; certified reports
// the interval came from sketch bounds alone (an uncertified vertex
// fell back to the exact plane, so its interval is the exact score).
type approxVertexJSON struct {
	W         []float64 `json:"w"`
	Lo        float64   `json:"lo"`
	Hi        float64   `json:"hi"`
	Certified bool      `json:"certified"`
}

// handleApproxSolve answers POST .../solve?approx=1: instead of the
// exact region, it bounds TopK(w) at every vertex of the query region
// from the engine's sketch tier — microseconds instead of a solve, with
// automatic exact fallback per vertex.
func (s *server) handleApproxSolve(w http.ResponseWriter, eng *toprr.Engine, snap toprr.Snapshot, q toprr.Query) {
	verts := q.WR.VertexPoints()
	out := make([]approxVertexJSON, 0, len(verts))
	certified := 0
	for _, v := range verts {
		est, err := eng.ApproxRank(v, q.K)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if est.Certified {
			certified++
		}
		out = append(out, approxVertexJSON{W: v, Lo: est.Lo, Hi: est.Hi, Certified: est.Certified})
	}
	writeJSON(w, http.StatusOK, struct {
		Generation uint64             `json:"generation"`
		Approx     bool               `json:"approx"`
		K          int                `json:"k"`
		Vertices   []approxVertexJSON `json:"vertices"`
		Certified  int                `json:"certified"`
		Fallbacks  int                `json:"fallbacks"`
	}{uint64(snap.Gen), true, q.K, out, certified, len(out) - certified})
}

// handleBatch answers POST .../batch: every query of the batch runs
// against one pinned generation.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request, eng *toprr.Engine) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req struct {
		Queries []queryJSON `json:"queries"`
	}
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	snap := eng.Snapshot()
	qs := make([]toprr.Query, len(req.Queries))
	for i, qj := range req.Queries {
		q, err := buildQuery(snap, qj)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		qs[i] = q
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results, err := eng.SolveBatchAt(ctx, snap, qs)
	if err != nil {
		writeErr(w, solveStatus(err), err)
		return
	}
	out := make([]resultJSON, len(results))
	for i, res := range results {
		out[i] = resultToJSON(res)
	}
	writeJSON(w, http.StatusOK, struct {
		Generation uint64       `json:"generation"`
		Results    []resultJSON `json:"results"`
	}{uint64(snap.Gen), out})
}

// opJSON is the wire form of one dataset mutation.
type opJSON struct {
	Op    string    `json:"op"` // "insert", "delete" or "update"
	Index int       `json:"index,omitempty"`
	Point []float64 `json:"point,omitempty"`
}

func (oj opJSON) toOp() (toprr.Op, error) {
	switch strings.ToLower(oj.Op) {
	case "insert":
		return toprr.Insert(vec.Vector(oj.Point)), nil
	case "delete":
		return toprr.Delete(oj.Index), nil
	case "update":
		return toprr.Update(oj.Index, vec.Vector(oj.Point)), nil
	default:
		return toprr.Op{}, fmt.Errorf("unknown op %q (want insert, delete or update)", oj.Op)
	}
}

// appliedOpJSON is one op-log entry on the wire.
type appliedOpJSON struct {
	Seq        uint64    `json:"seq"`
	Generation uint64    `json:"generation"`
	Op         string    `json:"op"`
	Index      int       `json:"index"`
	Point      []float64 `json:"point,omitempty"`
	Moved      int       `json:"moved"` // delete: former index of the swapped-in option, -1 otherwise
}

// handleOps mutates the dataset (POST) or reads the applied-ops log
// (GET ?since=<seq>).
func (s *server) handleOps(w http.ResponseWriter, r *http.Request, eng *toprr.Engine) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Ops []opJSON `json:"ops"`
		}
		if err := s.decodeBody(w, r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
			return
		}
		if len(req.Ops) == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("empty ops batch"))
			return
		}
		ops := make([]toprr.Op, len(req.Ops))
		for i, oj := range req.Ops {
			op, err := oj.toOp()
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: %w", i, err))
				return
			}
			ops[i] = op
		}
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		gen, err := eng.Apply(ctx, ops)
		if err != nil {
			// Validation failures reject the whole batch atomically with
			// 400. Server-side faults are not the batch's fault: a
			// cancelled or timed-out request maps like the solve path, a
			// WAL write failure is a 500, and a closing engine a 503.
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
				code = solveStatus(err)
			case errors.Is(err, toprr.ErrClosed):
				code = http.StatusServiceUnavailable
			case errors.Is(err, toprr.ErrDurability):
				code = http.StatusInternalServerError
			}
			writeErr(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Generation uint64 `json:"generation"`
			Applied    int    `json:"applied"`
		}{uint64(gen), len(ops)})
	case http.MethodGet:
		var since uint64
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("since: %w", err))
				return
			}
			since = n
		}
		log := eng.Log(since)
		out := make([]appliedOpJSON, len(log))
		for i, e := range log {
			out[i] = appliedOpJSON{
				Seq:        e.Seq,
				Generation: uint64(e.Gen),
				Op:         e.Op.Kind.String(),
				Index:      e.Op.Index,
				Point:      e.Op.Point,
				Moved:      e.Moved,
			}
		}
		writeJSON(w, http.StatusOK, struct {
			Generation uint64          `json:"generation"`
			Ops        []appliedOpJSON `json:"ops"`
		}{uint64(eng.Generation()), out})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST or GET"))
	}
}

// createJSON is the wire form of POST /v1/datasets: a name plus either
// explicit points or a synthetic-distribution spec, optionally with a
// solve-plane shard count (0 = the daemon's -shards default).
type createJSON struct {
	Name   string      `json:"name"`
	Points [][]float64 `json:"points,omitempty"`
	Dist   string      `json:"dist,omitempty"`
	N      int         `json:"n,omitempty"`
	D      int         `json:"d,omitempty"`
	Seed   int64       `json:"seed,omitempty"`
	Shards int         `json:"shards,omitempty"`
}

// Bounds on synthetic datasets created over the wire, so one POST
// cannot allocate the daemon into the ground.
const (
	maxCreateN = 1 << 20
	maxCreateD = 10
)

// bootstrapPoints materializes a create request's dataset.
func bootstrapPoints(req createJSON) ([]vec.Vector, error) {
	if len(req.Points) > 0 {
		if req.Dist != "" || req.N != 0 || req.D != 0 || req.Seed != 0 {
			return nil, fmt.Errorf("give either points or a dist spec (dist/n/d/seed), not both")
		}
		pts := make([]vec.Vector, len(req.Points))
		for i, p := range req.Points {
			pts[i] = vec.Vector(p)
		}
		// Validate here, where a bad dataset is still provably the
		// caller's fault (400); past this point a Create failure is the
		// server's (500).
		if err := toprr.CheckDataset(pts); err != nil {
			return nil, err
		}
		return pts, nil
	}
	if req.Dist == "" {
		return nil, fmt.Errorf("dataset needs points or a dist spec ({\"dist\":\"IND\",\"n\":1000,\"d\":3})")
	}
	dd, err := dataset.ParseDistribution(req.Dist)
	if err != nil {
		return nil, err
	}
	if req.N <= 0 || req.N > maxCreateN {
		return nil, fmt.Errorf("n=%d out of range (0, %d]", req.N, maxCreateN)
	}
	if req.D < 2 || req.D > maxCreateD {
		return nil, fmt.Errorf("d=%d out of range [2, %d]", req.D, maxCreateD)
	}
	return dataset.Generate(dd, req.N, req.D, req.Seed).Pts, nil
}

// handleDatasets lists (GET) or creates (POST) datasets.
func (s *server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		infos := s.reg.List()
		type infoJSON struct {
			Name string `json:"name"`
			Open bool   `json:"open"`
		}
		out := make([]infoJSON, len(infos))
		for i, info := range infos {
			out[i] = infoJSON{Name: info.Name, Open: info.Open}
		}
		writeJSON(w, http.StatusOK, struct {
			Datasets []infoJSON `json:"datasets"`
		}{out})
	case http.MethodPost:
		var req createJSON
		if err := s.decodeBody(w, r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
			return
		}
		if err := toprr.ValidateDatasetName(req.Name); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Shards < 0 || req.Shards > toprr.MaxShards {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("shards=%d out of range [0, %d]", req.Shards, toprr.MaxShards))
			return
		}
		pts, err := bootstrapPoints(req)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		eng, err := s.reg.CreateWithShards(req.Name, pts, req.Shards)
		if err != nil {
			// The name and dataset validated above, so what remains is a
			// name conflict, a closing registry, or a server-side fault
			// (disk I/O on a durable registry) — never the request's.
			code := http.StatusInternalServerError
			switch {
			case errors.Is(err, toprr.ErrDatasetExists):
				code = http.StatusConflict
			case errors.Is(err, toprr.ErrRegistryClosed):
				code = http.StatusServiceUnavailable
			}
			writeErr(w, code, err)
			return
		}
		w.Header().Set("Location", datasetsPrefix+"/"+req.Name)
		writeJSON(w, http.StatusCreated, struct {
			Name       string `json:"name"`
			Generation uint64 `json:"generation"`
			Options    int    `json:"options"`
			Dim        int    `json:"dim"`
			Shards     int    `json:"shards"`
		}{req.Name, uint64(eng.Generation()), eng.Len(), eng.Dim(), eng.Shards()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

// handleDatasetDelete answers DELETE /v1/datasets/{name}.
func (s *server) handleDatasetDelete(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use DELETE"))
		return
	}
	if err := s.reg.Drop(name); err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, toprr.ErrUnknownDataset):
			code = http.StatusNotFound
		case errors.Is(err, toprr.ErrRegistryClosed):
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Dropped string `json:"dropped"`
	}{name})
}

// datasetStatsJSON is one dataset's stats block: generation, shape,
// cache occupancy, snapshot GC counters and durable-layer state. For an
// evicted dataset (open=false) only name and open are meaningful —
// stats never page a tenant back in.
type datasetStatsJSON struct {
	Name           string          `json:"name"`
	Open           bool            `json:"open"`
	Generation     uint64          `json:"generation"`
	Options        int             `json:"options"`
	Dim            int             `json:"dim"`
	Hyperplanes    int             `json:"cache_hyperplanes"`
	TopKConfigs    int             `json:"cache_topk_configs"`
	TopKHits       int             `json:"cache_topk_hits"`
	TopKMisses     int             `json:"cache_topk_misses"`
	Evictions      int             `json:"cache_evictions"`
	PatchedEntries int             `json:"cache_patched_entries"`
	PatchInserts   int             `json:"cache_patch_inserts"`
	UntouchedAdvs  int             `json:"cache_untouched_advances"`
	MaxConfigs     int             `json:"cache_max_configs,omitempty"`
	SketchEntries  int             `json:"sketch_entries"`
	SketchFolded   int             `json:"sketch_folded"`
	SketchHits     int             `json:"sketch_gate_hits"`
	SketchMisses   int             `json:"sketch_gate_misses"`
	SketchSkips    int             `json:"sketch_certified_skips"`
	SketchCert     int             `json:"sketch_certified"`
	SketchFalls    int             `json:"sketch_fallbacks"`
	FabricPartials int64           `json:"fabric_remote_partials"`
	FabricHedged   int64           `json:"fabric_hedged_dispatches"`
	FabricFalls    int64           `json:"fabric_fallbacks"`
	FabricBytes    int64           `json:"fabric_remote_bytes"`
	LiveGens       int             `json:"live_generations"`
	RetainedBytes  int64           `json:"retained_snapshot_bytes"`
	Shards         int             `json:"shards,omitempty"`
	ShardStats     []shardStatJSON `json:"shard_stats,omitempty"`
	Persistent     bool            `json:"persistent"`
	WALBytes       int64           `json:"wal_bytes"`
	WALSegments    int             `json:"wal_segments"`
	WALSyncs       int64           `json:"wal_syncs,omitempty"`
	LastCompaction uint64          `json:"last_compaction_generation"`
	CompactError   string          `json:"wal_compact_error,omitempty"`
	CloseError     string          `json:"close_error,omitempty"` // last idle-eviction close failure
}

// shardStatJSON is one shard's slice of a dataset's solve-plane caches.
type shardStatJSON struct {
	Shard       int   `json:"shard"`
	TopKEntries int   `json:"topk_entries"`
	TopKHits    int   `json:"topk_hits"`
	TopKMisses  int   `json:"topk_misses"`
	Hyperplanes int   `json:"hyperplanes"`
	RemoteParts int64 `json:"remote_partials,omitempty"`
}

func datasetStatsToJSON(ds toprr.DatasetStats) datasetStatsJSON {
	closeErr := ""
	if ds.CloseErr != nil {
		closeErr = ds.CloseErr.Error()
	}
	var shardStats []shardStatJSON
	for _, ss := range ds.Cache.ShardStats {
		shardStats = append(shardStats, shardStatJSON{
			Shard:       ss.Shard,
			TopKEntries: ss.TopKEntries,
			TopKHits:    ss.TopKHits,
			TopKMisses:  ss.TopKMisses,
			Hyperplanes: ss.Hyperplanes,
			RemoteParts: ss.RemotePartials,
		})
	}
	return datasetStatsJSON{
		Name:           ds.Name,
		Open:           ds.Open,
		Generation:     uint64(ds.Cache.Generation),
		Options:        ds.Options,
		Dim:            ds.Dim,
		Hyperplanes:    ds.Cache.Hyperplanes,
		TopKConfigs:    ds.Cache.TopKConfigs,
		TopKHits:       ds.Cache.TopKHits,
		TopKMisses:     ds.Cache.TopKMisses,
		Evictions:      ds.Cache.Evictions,
		PatchedEntries: ds.Cache.PatchedEntries,
		PatchInserts:   ds.Cache.PatchInserts,
		UntouchedAdvs:  ds.Cache.UntouchedAdvances,
		MaxConfigs:     ds.MaxConfigs,
		SketchEntries:  ds.Cache.SketchEntries,
		SketchFolded:   ds.Cache.SketchFolded,
		SketchHits:     ds.Cache.SketchGateHits,
		SketchMisses:   ds.Cache.SketchGateMisses,
		SketchSkips:    ds.Cache.SketchCertifiedSkips,
		SketchCert:     ds.Cache.SketchCertified,
		SketchFalls:    ds.Cache.SketchFallbacks,
		FabricPartials: ds.Cache.RemotePartials,
		FabricHedged:   ds.Cache.HedgedDispatches,
		FabricFalls:    ds.Cache.Fallbacks,
		FabricBytes:    ds.Cache.RemoteBytes,
		LiveGens:       ds.Cache.LiveGenerations,
		RetainedBytes:  ds.Cache.RetainedSnapshotBytes,
		Shards:         ds.Cache.Shards,
		ShardStats:     shardStats,
		Persistent:     ds.Persist.Persistent,
		WALBytes:       ds.Persist.WALBytes,
		WALSegments:    ds.Persist.WALSegments,
		WALSyncs:       ds.Persist.WALSyncs,
		LastCompaction: uint64(ds.Persist.LastCompaction),
		CompactError:   ds.Persist.CompactError,
		CloseError:     closeErr,
	}
}

// engineStats converts one resident engine's counters into the
// per-dataset stats block (used by the per-dataset stats route, where
// the engine is already acquired).
func engineStats(name string, eng *toprr.Engine) datasetStatsJSON {
	return datasetStatsToJSON(toprr.EngineDatasetStats(name, eng))
}

// handleDatasetStats answers GET /v1/datasets/{name}/stats for one
// tenant (acquiring it — unlike the aggregate route — so it reports a
// live engine even if it was evicted).
func (s *server) handleDatasetStats(w http.ResponseWriter, r *http.Request, name string, eng *toprr.Engine) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, engineStats(name, eng))
}

// statsTotals aggregates the open tenants.
type statsTotals struct {
	Datasets       int   `json:"datasets"`
	OpenDatasets   int   `json:"open_datasets"`
	Options        int   `json:"options"`
	Hyperplanes    int   `json:"cache_hyperplanes"`
	TopKConfigs    int   `json:"cache_topk_configs"`
	TopKHits       int   `json:"cache_topk_hits"`
	TopKMisses     int   `json:"cache_topk_misses"`
	Evictions      int   `json:"cache_evictions"`
	PatchedEntries int   `json:"cache_patched_entries"`
	PatchInserts   int   `json:"cache_patch_inserts"`
	UntouchedAdvs  int   `json:"cache_untouched_advances"`
	SketchEntries  int   `json:"sketch_entries"`
	SketchHits     int   `json:"sketch_gate_hits"`
	SketchSkips    int   `json:"sketch_certified_skips"`
	SketchCert     int   `json:"sketch_certified"`
	SketchFalls    int   `json:"sketch_fallbacks"`
	FabricPartials int64 `json:"fabric_remote_partials"`
	FabricHedged   int64 `json:"fabric_hedged_dispatches"`
	FabricFalls    int64 `json:"fabric_fallbacks"`
	FabricBytes    int64 `json:"fabric_remote_bytes"`
	LiveGens       int   `json:"live_generations"`
	RetainedBytes  int64 `json:"retained_snapshot_bytes"`
	WALBytes       int64 `json:"wal_bytes"`
	WALSegments    int   `json:"wal_segments"`
}

// handleStats answers GET /v1/stats: per-dataset breakdowns, totals
// across tenants, and process-wide work counters. For compatibility
// with pre-tenancy clients, the "default" dataset's fields (when it is
// resident) are mirrored at the top level, exactly as the
// single-dataset daemon reported them.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	all := s.reg.Stats()
	perDS := make([]datasetStatsJSON, len(all))
	var totals statsTotals
	var legacy datasetStatsJSON
	totals.Datasets = len(all)
	for i, ds := range all {
		perDS[i] = datasetStatsToJSON(ds)
		if !ds.Open {
			continue
		}
		totals.OpenDatasets++
		totals.Options += perDS[i].Options
		totals.Hyperplanes += perDS[i].Hyperplanes
		totals.TopKConfigs += perDS[i].TopKConfigs
		totals.TopKHits += perDS[i].TopKHits
		totals.TopKMisses += perDS[i].TopKMisses
		totals.Evictions += perDS[i].Evictions
		totals.PatchedEntries += perDS[i].PatchedEntries
		totals.PatchInserts += perDS[i].PatchInserts
		totals.UntouchedAdvs += perDS[i].UntouchedAdvs
		totals.SketchEntries += perDS[i].SketchEntries
		totals.SketchHits += perDS[i].SketchHits
		totals.SketchSkips += perDS[i].SketchSkips
		totals.SketchCert += perDS[i].SketchCert
		totals.SketchFalls += perDS[i].SketchFalls
		totals.FabricPartials += perDS[i].FabricPartials
		totals.FabricHedged += perDS[i].FabricHedged
		totals.FabricFalls += perDS[i].FabricFalls
		totals.FabricBytes += perDS[i].FabricBytes
		totals.LiveGens += perDS[i].LiveGens
		totals.RetainedBytes += perDS[i].RetainedBytes
		totals.WALBytes += perDS[i].WALBytes
		totals.WALSegments += perDS[i].WALSegments
		if ds.Name == defaultDataset {
			legacy = perDS[i]
		}
	}
	ctr := toprr.ReadCounters()
	writeJSON(w, http.StatusOK, struct {
		// Legacy top-level mirror of the default dataset.
		Generation     uint64  `json:"generation"`
		Options        int     `json:"options"`
		Dim            int     `json:"dim"`
		UptimeMS       float64 `json:"uptime_ms"`
		Hyperplanes    int     `json:"cache_hyperplanes"`
		TopKConfigs    int     `json:"cache_topk_configs"`
		TopKHits       int     `json:"cache_topk_hits"`
		TopKMisses     int     `json:"cache_topk_misses"`
		Evictions      int     `json:"cache_evictions"`
		LiveGens       int     `json:"live_generations"`
		RetainedBytes  int64   `json:"retained_snapshot_bytes"`
		Persistent     bool    `json:"persistent"`
		WALBytes       int64   `json:"wal_bytes"`
		WALSegments    int     `json:"wal_segments"`
		LastCompaction uint64  `json:"last_compaction_generation"`
		CompactError   string  `json:"wal_compact_error,omitempty"`
		// Tenancy view.
		Datasets []datasetStatsJSON `json:"datasets"`
		Totals   statsTotals        `json:"totals"`
		// Process-wide work counters.
		Regions  int64 `json:"regions_processed"`
		LPSolves int64 `json:"lp_solves"`
		QPSolves int64 `json:"qp_solves"`
	}{
		Generation:     legacy.Generation,
		Options:        legacy.Options,
		Dim:            legacy.Dim,
		UptimeMS:       float64(time.Since(s.start)) / float64(time.Millisecond),
		Hyperplanes:    legacy.Hyperplanes,
		TopKConfigs:    legacy.TopKConfigs,
		TopKHits:       legacy.TopKHits,
		TopKMisses:     legacy.TopKMisses,
		Evictions:      legacy.Evictions,
		LiveGens:       legacy.LiveGens,
		RetainedBytes:  legacy.RetainedBytes,
		Persistent:     legacy.Persistent,
		WALBytes:       legacy.WALBytes,
		WALSegments:    legacy.WALSegments,
		LastCompaction: legacy.LastCompaction,
		CompactError:   legacy.CompactError,
		Datasets:       perDS,
		Totals:         totals,
		Regions:        ctr.RegionsProcessed,
		LPSolves:       ctr.LPSolves,
		QPSolves:       ctr.QPSolves,
	})
}
