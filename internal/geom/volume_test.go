package geom

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

// TestExactVolumeSimplex checks the standard simplex volume 1/d! for
// dimensions 2-6 via the halfspace Σx <= 1 clipped out of the unit box.
func TestExactVolumeSimplex(t *testing.T) {
	for d := 2; d <= 6; d++ {
		ones := vec.New(d)
		for j := range ones {
			ones[j] = -1
		}
		simplex := FromHalfspaces([]Halfspace{NewHalfspace(ones, -1)},
			vec.New(d), onesVec(d))
		want := 1.0
		for f := 2; f <= d; f++ {
			want /= float64(f)
		}
		if got := simplex.Volume(0); math.Abs(got-want) > 1e-9 {
			t.Errorf("d=%d simplex volume = %v, want %v", d, got, want)
		}
	}
}

func onesVec(d int) vec.Vector {
	v := vec.New(d)
	for j := range v {
		v[j] = 1
	}
	return v
}

// TestExactVolumeBoxHighDim verifies exact box volumes through the
// recursive path in dimensions past the old hand-coded 3-D case.
func TestExactVolumeBoxHighDim(t *testing.T) {
	for d := 4; d <= 6; d++ {
		lo, hi := vec.New(d), vec.New(d)
		for j := range hi {
			hi[j] = 0.5
		}
		b := NewBox(lo, hi)
		want := math.Pow(0.5, float64(d))
		if got := b.Volume(0); math.Abs(got-want) > 1e-9 {
			t.Errorf("d=%d box volume = %v, want %v", d, got, want)
		}
	}
}

// TestExactVolumeMatchesMonteCarlo cross-checks the recursion against
// sampling on random clipped polytopes in 4-5 dimensions.
func TestExactVolumeMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for d := 4; d <= 5; d++ {
		for iter := 0; iter < 5; iter++ {
			p := NewBox(vec.New(d), onesVec(d))
			for cuts := 0; cuts < 3; cuts++ {
				a := vec.New(d)
				for j := range a {
					a[j] = rng.NormFloat64()
				}
				if a.Norm() < 0.2 {
					continue
				}
				p = p.Clip(NewHalfspace(a, a.Dot(p.Centroid())-0.1))
				if p.IsEmpty() {
					break
				}
			}
			if p.IsEmpty() || p.NumVertices() <= d {
				continue
			}
			exact := p.exactVolume()
			mc := p.volumeMC(120000)
			if exact < 1e-6 {
				continue
			}
			if math.Abs(exact-mc)/exact > 0.1 {
				t.Errorf("d=%d iter=%d: exact %v vs MC %v", d, iter, exact, mc)
			}
		}
	}
}

// TestVolumeSplitAdditivityHighDim: volumes of split halves sum to the
// whole, now checkable exactly in 4-5 dimensions.
func TestVolumeSplitAdditivityHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for d := 4; d <= 5; d++ {
		b := NewBox(vec.New(d), onesVec(d))
		for iter := 0; iter < 10; iter++ {
			a := vec.New(d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			if a.Norm() < 0.2 {
				continue
			}
			h := NewHalfspace(a, a.Dot(b.Centroid())+0.1*rng.NormFloat64())
			neg, pos := b.Split(h)
			got := neg.Volume(0) + pos.Volume(0)
			if math.Abs(got-1) > 1e-7 {
				t.Errorf("d=%d iter=%d: split volumes sum to %v, want 1", d, iter, got)
			}
		}
	}
}

// TestVolumeDegenerateFace: faces have zero volume.
func TestVolumeDegenerateFace(t *testing.T) {
	b := unitBox(3)
	_, corner := b.Split(NewHalfspace(vec.Of(1, 1, 1), 3)) // touches (1,1,1) only
	if corner.IsEmpty() {
		t.Fatal("corner face lost")
	}
	if got := corner.Volume(0); got != 0 {
		t.Errorf("corner volume = %v, want 0", got)
	}
}

func TestOrthonormalBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for d := 2; d <= 7; d++ {
		for iter := 0; iter < 20; iter++ {
			a := vec.New(d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			if a.Norm() < 0.1 {
				continue
			}
			basis := vec.OrthonormalBasisOrthogonalTo(a, 1e-9)
			if len(basis) != d-1 {
				t.Fatalf("d=%d: basis size %d", d, len(basis))
			}
			for i, b := range basis {
				if math.Abs(b.Norm()-1) > 1e-9 {
					t.Fatalf("basis vector not unit")
				}
				if math.Abs(b.Dot(a)) > 1e-9 {
					t.Fatalf("basis vector not orthogonal to normal")
				}
				for j := i + 1; j < len(basis); j++ {
					if math.Abs(b.Dot(basis[j])) > 1e-9 {
						t.Fatalf("basis vectors not mutually orthogonal")
					}
				}
			}
		}
	}
}

func TestProjectToBasisRoundTrip(t *testing.T) {
	// Distances within a hyperplane are preserved under projection to
	// its orthonormal basis.
	rng := rand.New(rand.NewSource(4))
	a := vec.Of(1, 2, -1, 0.5)
	basis := vec.OrthonormalBasisOrthogonalTo(a, 1e-9)
	mk := func() vec.Vector {
		// Random point in the hyperplane through the origin.
		p := vec.New(4)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		return p.AddScaled(-p.Dot(a)/a.Dot(a), a)
	}
	for iter := 0; iter < 50; iter++ {
		p, q := mk(), mk()
		pp := vec.ProjectToBasis(p, basis)
		qq := vec.ProjectToBasis(q, basis)
		if math.Abs(p.Dist(q)-pp.Dist(qq)) > 1e-9 {
			t.Fatalf("projection distorted distances: %v vs %v", p.Dist(q), pp.Dist(qq))
		}
	}
}
