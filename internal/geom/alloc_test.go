package geom

// Allocation gates for the clip hot path. These are the CI-enforced
// invariants docs/PERFORMANCE.md documents: redundant clips inside a
// Fold allocate nothing, and effective clips allocate only the handful
// of result headers (the vertex storage itself comes from the arenas).

import (
	"testing"

	"toprr/internal/race"
	"toprr/internal/vec"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("alloc counts are inflated under -race")
	}
}

func TestAllocsRedundantFoldClip(t *testing.T) {
	skipUnderRace(t)
	d := 4
	f := NewFold(NewBox(vec.New(d), vec.Of(1, 1, 1, 1)))
	defer f.Release()
	redundant := NewHalfspace(vec.Of(1, 0, 0, 0), -5)
	f.Clip(redundant) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		f.Clip(redundant)
	})
	if allocs != 0 {
		t.Fatalf("redundant Fold.Clip allocates %.1f per run, want 0", allocs)
	}
}

func TestAllocsEffectiveFoldClipBounded(t *testing.T) {
	skipUnderRace(t)
	d := 4
	hs := randomHalfspaces(d, 60, 21)
	// Warm arenas and scratch to their steady-state sizes, then measure
	// a full fold: the per-clip budget covers only the result headers
	// (HS slice, vertex slice, polytope struct, bits headers), not the
	// vertex storage, which the arenas recycle.
	lo, hi := vec.New(d), vec.Of(1, 1, 1, 1)
	run := func() int {
		f := NewFold(NewBox(lo, hi))
		n := 0
		for _, h := range hs {
			if f.Clip(h) {
				n++
			}
		}
		f.Release()
		return n
	}
	effective := run()
	if effective < 5 {
		t.Fatalf("degenerate workload: only %d effective clips", effective)
	}
	allocs := testing.AllocsPerRun(20, func() { run() })
	// NewBox itself allocates ~4 per halfspace + corners; give the fold
	// 8 header allocations per effective clip on top.
	budget := float64(60 + 8*effective)
	if allocs > budget {
		t.Fatalf("fold of %d clips (%d effective) allocates %.0f per run, budget %.0f",
			len(hs), effective, allocs, budget)
	}
}
