// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 6). Each experiment
// driver returns a Table whose rows mirror the series the paper plots;
// cmd/benchrunner prints them, and the repository-root benchmarks wrap
// them in testing.B form.
//
// Absolute runtimes differ from the paper's testbed, so EXPERIMENTS.md
// compares shapes (orderings, growth trends, crossovers) rather than
// numbers. The Scale knob shrinks dataset sizes and query counts
// uniformly so the full suite can run in minutes; Scale = 1 reproduces
// the paper's parameter grid exactly.
package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// Defaults of the paper's Table 5 (bold values).
const (
	DefaultN     = 400000
	DefaultD     = 4
	DefaultK     = 10
	DefaultSigma = 0.01
)

// Scale shrinks experiment workloads uniformly: dataset sizes are
// multiplied by N, and Queries wR regions are averaged per data point.
type Scale struct {
	N          float64       // dataset-size multiplier (1 = paper scale)
	Queries    int           // wR regions averaged per measurement (paper: 50)
	MaxRegions int           // per-query recursion budget; exceeding it marks the query failed (0 = solver default)
	Timeout    time.Duration // per-query wall-clock budget; timed-out queries are annotated like the paper's ">24h" cells (0 = unlimited)
}

// DefaultScale finishes the full suite in a few minutes on a laptop.
var DefaultScale = Scale{N: 0.25, Queries: 3, MaxRegions: 300000, Timeout: 30 * time.Second}

func (s Scale) n(base int) int {
	n := int(float64(base) * s.N)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Table is a printable experiment result: a caption, column headers and
// rows of cells.
type Table struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Caption)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RandomRegion draws a random axis-aligned wR of side sigma (optionally
// elongated by gamma along one random axis at constant volume, as in
// Table 7) that fits inside the preference simplex.
func RandomRegion(prefDim int, sigma, gamma float64, rng *rand.Rand) *geom.Polytope {
	sides := make([]float64, prefDim)
	if gamma == 0 {
		gamma = 1
	}
	base := sigma
	if gamma != 1 && prefDim > 0 {
		// One side gamma*s, the rest s, with volume sigma^m.
		base = sigma / math.Pow(gamma, 1/float64(prefDim))
	}
	for j := range sides {
		sides[j] = base
	}
	if gamma != 1 && prefDim > 0 {
		sides[rng.Intn(prefDim)] = gamma * base
	}
	for attempt := 0; attempt < 10000; attempt++ {
		lo, hi := vec.New(prefDim), vec.New(prefDim)
		sum := 0.0
		ok := true
		for j := 0; j < prefDim; j++ {
			if sides[j] >= 1 {
				ok = false
				break
			}
			lo[j] = rng.Float64() * (1 - sides[j])
			hi[j] = lo[j] + sides[j]
			sum += hi[j]
		}
		if !ok {
			break
		}
		if sum <= 1 { // region entirely inside the weight simplex
			return toprr.PrefBox(lo, hi)
		}
	}
	// Fall back to a corner-anchored region (guaranteed feasible for the
	// sigma values of the paper's grid).
	lo, hi := vec.New(prefDim), vec.New(prefDim)
	for j := 0; j < prefDim; j++ {
		s := sides[j]
		if s > 0.9/float64(prefDim) {
			s = 0.9 / float64(prefDim)
		}
		lo[j] = 0.02
		hi[j] = 0.02 + s
	}
	return toprr.PrefBox(lo, hi)
}

// Measurement aggregates solver runs over several query regions.
type Measurement struct {
	Alg         toprr.Algorithm
	Time        time.Duration // mean per query
	Filtered    float64       // mean |D'|
	Vall        float64       // mean |Vall|
	Regions     float64
	Splits      float64
	Lemma5Prune float64
	Failed      int // queries aborted by the MaxRegions valve
}

// RunAlg solves the same queries with one algorithm and averages stats.
func RunAlg(pts []vec.Vector, k int, regions []*geom.Polytope, opt toprr.Options) Measurement {
	m := Measurement{Alg: opt.Alg}
	var total time.Duration
	n := 0
	for _, wr := range regions {
		res, err := toprr.Solve(context.Background(), toprr.NewProblem(pts, k, wr), opt)
		if err != nil {
			m.Failed++
			continue
		}
		total += res.Stats.Elapsed
		m.Filtered += float64(res.Stats.FilteredOptions)
		m.Vall += float64(res.Stats.VallSize)
		m.Regions += float64(res.Stats.Regions)
		m.Splits += float64(res.Stats.Splits)
		m.Lemma5Prune += float64(res.Stats.Lemma5Prunes)
		n++
	}
	if n > 0 {
		m.Time = total / time.Duration(n)
		m.Filtered /= float64(n)
		m.Vall /= float64(n)
		m.Regions /= float64(n)
		m.Splits /= float64(n)
		m.Lemma5Prune /= float64(n)
	}
	return m
}

// Regions draws Queries random wR regions for a preference space.
func (s Scale) Regions(prefDim int, sigma, gamma float64, seed int64) []*geom.Polytope {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*geom.Polytope, s.Queries)
	for i := range out {
		out[i] = RandomRegion(prefDim, sigma, gamma, rng)
	}
	return out
}

// data returns a synthetic dataset at the scaled size.
func (s Scale) data(dist dataset.Distribution, n, d int) *dataset.Dataset {
	return dataset.Generate(dist, s.n(n), d, 7)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.4gs", d.Seconds())
}

func fmtF(x float64) string { return fmt.Sprintf("%.1f", x) }
