package store

// Multi-dataset layout of one data-directory root.
//
// A root directory holds one subdirectory per named dataset, each a
// fully independent store: its own base snapshots, WAL segments and
// LOCK flock. Nothing ties the siblings together — a dataset opens,
// compacts, crashes and recovers exactly as a single-store directory
// does — so the per-dataset recovery contract of docs/PERSISTENCE.md
// applies verbatim under <root>/<dataset>/.
//
//	<root>/
//	  laptops/   snap-….snap  wal-….seg  LOCK
//	  phones/    snap-….snap  wal-….seg  LOCK
//
// This file holds the layout-level helpers: dataset-name validation
// (names are path components and must never escape the root), boot-time
// discovery of existing datasets, dataset removal, and the migration of
// a pre-tenancy single-store root into the <root>/<dataset>/ shape.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// maxDatasetName bounds dataset-name length; names are path components
// and directory entries, so excess here is operator error, not scale.
const maxDatasetName = 64

// ValidateDatasetName reports whether name is usable as a dataset name:
// 1-64 characters of [a-zA-Z0-9._-], starting with an alphanumeric.
// The grammar keeps every name a safe, portable path component — no
// separators, no "..", no hidden files — so a dataset can never address
// state outside its own <root>/<name>/ subdirectory.
func ValidateDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty dataset name")
	}
	if len(name) > maxDatasetName {
		return fmt.Errorf("store: dataset name %q over %d characters", name, maxDatasetName)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if i == 0 {
			if !alnum {
				return fmt.Errorf("store: dataset name %q must start with a letter or digit", name)
			}
			continue
		}
		if !alnum && c != '.' && c != '_' && c != '-' {
			return fmt.Errorf("store: dataset name %q has invalid character %q", name, c)
		}
	}
	return nil
}

// DatasetDir returns the data directory of one named dataset under a
// registry root. The name must have passed ValidateDatasetName.
func DatasetDir(root, name string) string {
	return filepath.Join(root, name)
}

// DiscoverDatasets lists the datasets recoverable under root: every
// subdirectory with a valid name that holds a base snapshot (HasState).
// Subdirectories without state are skipped — a crash between MkdirAll
// and the first base snapshot leaves one, and it holds nothing to
// recover — as are entries whose names the grammar rejects (operator
// artifacts, not datasets). A missing root is simply no datasets. The
// result is sorted by name.
func DiscoverDatasets(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: discover %s: %w", root, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() || ValidateDatasetName(e.Name()) != nil {
			continue
		}
		ok, err := HasState(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: discover %s: %w", root, err)
		}
		if ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// RemoveDataset deletes a dataset's directory under root. The caller
// must have closed the dataset's store first; on Unix the open WAL fd
// of a racing reader keeps serving until it drops, but nothing new can
// open the directory once it is gone. Removing an absent dataset is a
// no-op.
func RemoveDataset(root, name string) error {
	if err := ValidateDatasetName(name); err != nil {
		return err
	}
	if err := os.RemoveAll(DatasetDir(root, name)); err != nil {
		return fmt.Errorf("store: remove dataset %s: %w", name, err)
	}
	return syncDir(root)
}

// MigrateLegacyLayout upgrades a pre-tenancy data directory — base
// snapshots and WAL segments directly under root, as written by
// single-store Open — into the multi-dataset layout by moving them into
// <root>/<name>/. It returns whether a migration happened; a root that
// is absent, empty, or already in the new layout is left untouched.
//
// The migration takes the legacy root LOCK first, so it can never move
// segment files out from under a live store owned by another process;
// the lock file itself is removed afterwards, since per-dataset LOCKs
// supersede it. Renames are same-directory-tree and the root is fsynced
// once at the end: a crash mid-migration leaves some files moved and
// some not, and the next MigrateLegacyLayout run completes the move (a
// dataset dir with state plus legacy root files resumes moving them).
func MigrateLegacyLayout(root, name string) (migrated bool, err error) {
	if err := ValidateDatasetName(name); err != nil {
		return false, err
	}
	legacy, err := HasState(root)
	if err != nil {
		return false, err
	}
	segs, err := filepath.Glob(filepath.Join(root, "wal-*.seg"))
	if err != nil {
		return false, err
	}
	if !legacy && len(segs) == 0 {
		return false, nil
	}

	// Exclude a live pre-tenancy process before touching its files.
	lockPath := filepath.Join(root, "LOCK")
	lock, err := os.OpenFile(lockPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return false, fmt.Errorf("store: migrate %s: %w", root, err)
	}
	defer lock.Close()
	if err := lockFile(lock); err != nil {
		return false, fmt.Errorf("store: migrate %s: root is in use by another store (flock: %v)", root, err)
	}

	dir := DatasetDir(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, fmt.Errorf("store: migrate %s: %w", root, err)
	}
	for _, pattern := range []string{"snap-*.snap", "wal-*.seg"} {
		paths, err := filepath.Glob(filepath.Join(root, pattern))
		if err != nil {
			return false, err
		}
		for _, p := range paths {
			if err := os.Rename(p, filepath.Join(dir, filepath.Base(p))); err != nil {
				return false, fmt.Errorf("store: migrate %s: %w", root, err)
			}
		}
	}
	if err := syncDir(dir); err != nil {
		return false, err
	}
	// The per-dataset LOCK supersedes the root one; drop it so the root
	// holds only dataset subdirectories. The flock stays held by the
	// open fd until this function returns.
	if err := os.Remove(lockPath); err != nil {
		return false, err
	}
	if err := syncDir(root); err != nil {
		return false, err
	}
	return true, nil
}
