package core

import (
	"sort"

	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Assembler is the final pipeline stage of a TopRR solve: given the
// collected impact vertices Vall, it produces oR per Theorem 1 — the
// intersection of the option box with the impact halfspaces of every
// vertex. Implementations must be deterministic for a given Vall.
type Assembler interface {
	// Name identifies the assembler in stats and logs.
	Name() string
	// Assemble returns the exact H-representation of oR and, when it
	// fits within vertexBudget, its explicit geometry.
	Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput
}

// AssembleOutput is the result of the assemble stage.
type AssembleOutput struct {
	Constraints []geom.Halfspace // exact H-representation (always set)
	OR          *geom.Polytope   // explicit geometry, nil if over budget
	Clips       int              // halfspaces that actually cut during enumeration
}

// ClipAssembler is the default assembler: incremental halfspace
// clipping of the option box.
//
// It always returns the exact H-representation (box constraints plus
// the deduplicated impact halfspaces). The explicit polytope is built
// by incremental clipping — halfspaces already satisfied by every
// current vertex are skipped, and deeper cuts are applied first so most
// later halfspaces hit that fast path — but with a small preference
// region the impact halfspaces are nearly parallel, and in high
// dimensions their intersection can have intractably many vertices; if
// the enumeration exceeds vertexBudget the polytope is abandoned (nil)
// while the H-representation stays exact.
type ClipAssembler struct{}

// Name implements Assembler.
func (ClipAssembler) Name() string { return "clip" }

// Assemble implements Assembler.
func (ClipAssembler) Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput {
	d := scorer.Dim()
	lo, hi := vec.New(d), vec.New(d)
	for j := range hi {
		hi[j] = 1
	}
	box := geom.NewBox(lo, hi)

	// Deduplicate impact halfspaces on a quantized grid and order them
	// deepest-cut first (higher threshold binds more of the box), with a
	// deterministic tie-break so runs are reproducible.
	type keyed struct {
		h   geom.Halfspace
		key string
	}
	seen := make(map[string]bool, len(vall))
	impactKeyed := make([]keyed, 0, len(vall))
	for _, iv := range vall {
		h := iv.ImpactHalfspace(scorer)
		key := append(h.A.Clone(), h.B).Key(1e-9)
		if seen[key] {
			continue
		}
		seen[key] = true
		impactKeyed = append(impactKeyed, keyed{h: h, key: key})
	}
	sort.Slice(impactKeyed, func(i, j int) bool {
		if impactKeyed[i].h.B != impactKeyed[j].h.B {
			return impactKeyed[i].h.B > impactKeyed[j].h.B
		}
		return impactKeyed[i].key < impactKeyed[j].key
	})
	impact := make([]geom.Halfspace, len(impactKeyed))
	for i, k := range impactKeyed {
		impact[i] = k.h
	}

	out := AssembleOutput{
		Constraints: append(append([]geom.Halfspace(nil), box.HS...), impact...),
	}

	or := box
	for _, h := range impact {
		next := or.Clip(h)
		if next != or {
			out.Clips++
		}
		or = next
		if or.NumVertices() > vertexBudget {
			return out
		}
	}
	out.OR = or
	return out
}

// sortedVall returns Vall in a deterministic order.
func (s *solver) sortedVall() []ImpactVertex {
	keys := make([]string, 0, len(s.vall))
	for k := range s.vall {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ImpactVertex, len(keys))
	for i, k := range keys {
		out[i] = s.vall[k]
	}
	return out
}
