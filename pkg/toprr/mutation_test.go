package toprr_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// wideQuery draws a query whose preference region is wide enough that
// the solver must split it, interning split hyperplanes along the way.
func wideQuery(rng *rand.Rand, d, k int) toprr.Query {
	m := d - 1
	lo, hi := vec.New(m), vec.New(m)
	for j := 0; j < m; j++ {
		lo[j] = 0.05 + 0.2*rng.Float64()
		hi[j] = lo[j] + 0.25/float64(m)
	}
	return toprr.Query{K: k, WR: toprr.PrefBox(lo, hi)}
}

// randomPoint draws one option in [0,1]^d.
func randomPoint(rng *rand.Rand, d int) vec.Vector {
	p := vec.New(d)
	for j := range p {
		p[j] = rng.Float64()
	}
	return p
}

// TestEngineMutationOracle: after any sequence of Insert/Delete/Update
// ops, the engine's answers must equal a fresh package-level Solve over
// an independently maintained copy of the point set (mirroring the
// store's swap-with-last delete semantics).
func TestEngineMutationOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	pts := randomMarket(rng, 100, 3)
	engine := toprr.NewEngine(pts)
	mirror := append([]vec.Vector(nil), pts...)

	// Warm the caches so mutations exercise incremental invalidation,
	// not just empty-cache rebuilds.
	for i := 0; i < 3; i++ {
		if _, err := engine.Solve(ctx, randomQuery(rng, 3, 2+i)); err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < 6; step++ {
		var ops []toprr.Op
		switch step % 3 {
		case 0: // vendor ships a product
			p := randomPoint(rng, 3)
			ops = []toprr.Op{toprr.Insert(p)}
			mirror = append(mirror, p)
		case 1: // vendor upgrades a product
			i := rng.Intn(len(mirror))
			p := randomPoint(rng, 3)
			ops = []toprr.Op{toprr.Update(i, p)}
			mirror[i] = p
		case 2: // vendor withdraws a product (swap-with-last)
			i := rng.Intn(len(mirror))
			ops = []toprr.Op{toprr.Delete(i)}
			mirror[i] = mirror[len(mirror)-1]
			mirror = mirror[:len(mirror)-1]
		}
		gen, err := engine.Apply(ctx, ops)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if want := toprr.Generation(2 + step); gen != want {
			t.Fatalf("step %d: generation = %d, want %d", step, gen, want)
		}
		if engine.Len() != len(mirror) {
			t.Fatalf("step %d: engine has %d options, mirror %d", step, engine.Len(), len(mirror))
		}

		q := randomQuery(rng, 3, 2+rng.Intn(3))
		got, err := engine.Solve(ctx, q)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := toprr.Solve(ctx, toprr.NewProblem(mirror, q.K, q.WR), toprr.Options{Alg: toprr.TASStar})
		if err != nil {
			t.Fatalf("step %d: oracle solve: %v", step, err)
		}
		for probe := 0; probe < 300; probe++ {
			o := randomPoint(rng, 3)
			if got.IsTopRanking(o) != want.IsTopRanking(o) {
				t.Fatalf("step %d: engine diverges from rebuilt dataset at %v", step, o)
			}
		}
	}
}

// TestEngineIncrementalInvalidation: a single insert into a warm engine
// must retain the hyperplane and top-k cache entries that do not involve
// the new option, rather than dropping the caches to zero; a delete must
// drop only the affected slots' entries.
func TestEngineIncrementalInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ctx := context.Background()
	pts := randomMarket(rng, 150, 3)
	engine := toprr.NewEngine(pts)

	for i := 0; i < 4; i++ {
		if _, err := engine.Solve(ctx, wideQuery(rng, 3, 2+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	before := engine.CacheStats()
	if before.Hyperplanes == 0 || before.TopKConfigs == 0 {
		t.Fatalf("warmup interned nothing: %+v", before)
	}

	if _, err := engine.Apply(ctx, []toprr.Op{toprr.Insert(randomPoint(rng, 3))}); err != nil {
		t.Fatal(err)
	}
	after := engine.CacheStats()
	if after.Generation != 2 {
		t.Errorf("generation = %d, want 2", after.Generation)
	}
	// Insert touches no existing option pair: every hyperplane survives.
	if after.Hyperplanes != before.Hyperplanes {
		t.Errorf("insert changed hyperplane count %d -> %d, want unchanged", before.Hyperplanes, after.Hyperplanes)
	}
	// Explicit candidate-set configurations avoid the new option.
	if after.TopKConfigs == 0 {
		t.Error("insert dropped every top-k configuration; invalidation is not incremental")
	}
	if after.TopKHits+after.TopKMisses < before.TopKHits+before.TopKMisses {
		t.Error("cache counters went backwards across the advance")
	}

	// A delete drops the affected slots' entries — and only those.
	if _, err := engine.Apply(ctx, []toprr.Op{toprr.Delete(0)}); err != nil {
		t.Fatal(err)
	}
	afterDel := engine.CacheStats()
	if afterDel.Hyperplanes == 0 {
		t.Error("delete dropped every hyperplane; invalidation is not incremental")
	}
	if afterDel.Hyperplanes > after.Hyperplanes {
		t.Errorf("hyperplanes grew across a delete: %d -> %d", after.Hyperplanes, afterDel.Hyperplanes)
	}

	// The warm-but-advanced engine still answers correctly.
	q := randomQuery(rng, 3, 3)
	got, err := engine.Solve(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	fresh := toprr.NewEngine(engine.Scorer().Points())
	want, err := fresh.Solve(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 200; probe++ {
		o := randomPoint(rng, 3)
		if got.IsTopRanking(o) != want.IsTopRanking(o) {
			t.Fatalf("post-mutation engine diverges at %v", o)
		}
	}
}

// TestEngineConcurrentSolveApply: readers pin their generation — solves
// racing a stream of mutations answer exactly for the snapshot they
// started from. Run under -race in CI.
func TestEngineConcurrentSolveApply(t *testing.T) {
	seedRng := rand.New(rand.NewSource(13))
	ctx := context.Background()
	pts := randomMarket(seedRng, 100, 3)
	engine := toprr.NewEngine(pts)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// One writer: a stream of inserts, upgrades and withdrawals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		wrng := rand.New(rand.NewSource(99))
		for i := 0; i < 25; i++ {
			var op toprr.Op
			n := engine.Len()
			switch wrng.Intn(3) {
			case 0:
				op = toprr.Insert(randomPoint(wrng, 3))
			case 1:
				if n > 60 {
					op = toprr.Delete(wrng.Intn(n))
				} else {
					op = toprr.Insert(randomPoint(wrng, 3))
				}
			default:
				op = toprr.Update(wrng.Intn(n), randomPoint(wrng, 3))
			}
			if _, err := engine.Apply(ctx, []toprr.Op{op}); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	// Readers: pin a snapshot, solve, and verify the answer against the
	// pinned scorer with the brute-force rank oracle — if a mutation
	// leaked into the solve, the verification would use the wrong
	// dataset and fail.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := engine.Snapshot()
				q := randomQuery(rr, 3, 2+rr.Intn(3))
				res, err := engine.SolveAt(ctx, snap, q)
				if err != nil {
					t.Errorf("solve at gen %d: %v", snap.Gen, err)
					return
				}
				if res.Problem.Scorer != snap.Scorer {
					t.Error("solve did not run against its pinned snapshot")
					return
				}
				prob := toprr.Problem{Scorer: snap.Scorer, K: q.K, WR: q.WR}
				for probe := 0; probe < 50; probe++ {
					o := randomPoint(rr, 3)
					if !res.IsTopRanking(o) {
						continue
					}
					if w := toprr.VerifyTopRanking(prob, o, 20, rr); w != nil {
						t.Errorf("gen %d: option %v accepted but not top-%d at pinned weights %v", snap.Gen, o, q.K, w)
					}
					break
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
}

// TestEngineApplyValidation: invalid ops reject atomically without
// moving the generation, and a cancelled context rejects the batch.
func TestEngineApplyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ctx := context.Background()
	engine := toprr.NewEngine(randomMarket(rng, 20, 3))

	if _, err := engine.Apply(ctx, []toprr.Op{toprr.Delete(999)}); err == nil {
		t.Error("out-of-range delete should error")
	}
	if _, err := engine.Apply(ctx, []toprr.Op{toprr.Insert(vec.Of(0.5))}); err == nil {
		t.Error("wrong-dimension insert should error")
	}
	if g := engine.Generation(); g != 1 {
		t.Errorf("rejected ops moved the generation to %d", g)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := engine.Apply(cancelled, []toprr.Op{toprr.Insert(randomPoint(rng, 3))}); err == nil {
		t.Error("cancelled context should reject the batch")
	}
	if g := engine.Generation(); g != 1 {
		t.Errorf("cancelled apply moved the generation to %d", g)
	}
}
