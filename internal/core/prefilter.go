package core

import (
	"context"

	"toprr/internal/skyband"
	"toprr/internal/vec"
)

// Prefilter is the first pipeline stage of a TopRR solve: it reduces
// the dataset to the candidate options D' that can possibly appear in a
// top-k result somewhere in wR. Implementations must be safe for
// concurrent use; Filter returns indices into the problem's dataset.
//
// Section 6.3 of the paper compares four alternatives; the two that are
// both correct and competitive — the r-skyband and the (slower, but
// minimal-output) UTK filter — plug in via Options.Prefilter.
type Prefilter interface {
	// Name identifies the filter in stats and logs.
	Name() string
	// Filter returns the active candidate set for the problem.
	Filter(ctx context.Context, p Problem) ([]int, error)
}

// SkybandPrefilter is the default prefilter: the r-skyband of Section
// 6.3, computed against the vertices of wR. Linear output sensitivity,
// near-linear time; may retain some options the UTK filter would drop.
type SkybandPrefilter struct{}

// Name implements Prefilter.
func (SkybandPrefilter) Name() string { return "r-skyband" }

// Filter implements Prefilter.
func (SkybandPrefilter) Filter(ctx context.Context, p Problem) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pts := datasetPoints(p)
	rd := skyband.NewRDomVerts(p.WR.VertexPoints())
	return skyband.RSkyband(pts, p.K, rd), nil
}

// UTKPrefilter computes the exact candidate set — precisely the options
// appearing in at least one top-k result over wR — by partitioning wR
// into kIPRs with plain TAS (the fourth alternative of Section 6.3).
// Minimal |D'| at roughly twice the cost of the r-skyband; worthwhile
// when the same wR serves many downstream solves.
type UTKPrefilter struct {
	// MaxRegions bounds the internal kIPR partitioning (0 = solver
	// default).
	MaxRegions int
}

// Name implements Prefilter.
func (UTKPrefilter) Name() string { return "utk" }

// Filter implements Prefilter.
func (u UTKPrefilter) Filter(ctx context.Context, p Problem) ([]int, error) {
	return utkFilter(ctx, p, Options{Alg: TAS, MaxRegions: u.MaxRegions})
}

// NoPrefilter keeps the whole dataset active. It exists for ablation
// runs and as the degenerate strategy for tiny datasets where filtering
// costs more than it saves.
type NoPrefilter struct{}

// Name implements Prefilter.
func (NoPrefilter) Name() string { return "none" }

// Filter implements Prefilter.
func (NoPrefilter) Filter(ctx context.Context, p Problem) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	active := make([]int, p.Scorer.Len())
	for i := range active {
		active[i] = i
	}
	return active, nil
}

// gatedFilter runs the prefilter stage, letting Options.SketchGate
// shortcut the default r-skyband sweep when it certifies a candidate
// list. The gate engages only for the default prefilter — a certificate
// of "r-dominated by >= k options" speaks to the r-skyband's exact
// semantics, not to UTK's or NoPrefilter's — and only when it holds for
// the solve's dataset generation; in every other case the configured
// prefilter runs untouched. Either path returns the identical candidate
// set, so the gate never changes a solve's output bit.
func gatedFilter(ctx context.Context, p Problem, o Options, pf Prefilter, st *Stats) ([]int, error) {
	g := o.SketchGate
	if g == nil || o.DisableSketchGate {
		return pf.Filter(ctx, p)
	}
	if _, isDefault := pf.(SkybandPrefilter); !isDefault {
		return pf.Filter(ctx, p)
	}
	verts := p.WR.VertexPoints()
	cands, skipped, ok := g(p.Scorer, verts, p.K)
	if !ok {
		return pf.Filter(ctx, p)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pts := make([]vec.Vector, p.Scorer.Len())
	for _, i := range cands {
		pts[i] = p.Scorer.Point(i)
	}
	rd := skyband.NewRDomVerts(verts)
	st.SketchGated = true
	st.SketchSkips = skipped
	return skyband.RSkybandSubset(pts, cands, p.K, rd), nil
}

// datasetPoints materializes the problem's option points.
func datasetPoints(p Problem) []vec.Vector {
	pts := make([]vec.Vector, p.Scorer.Len())
	for i := range pts {
		pts[i] = p.Scorer.Point(i)
	}
	return pts
}
