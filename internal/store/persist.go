package store

// Durable storage for the versioned store: base snapshot files, boot
// recovery (snapshot load + WAL replay) and the snapshot/compaction
// cycle that keeps replay bounded. docs/PERSISTENCE.md specifies the
// recovery contract this file implements.
//
// A base snapshot file is
//
//	8-byte magic "TOPRRSN2"
//	payload:
//	  u64 generation · u64 op sequence watermark · u32 n · u32 d
//	  u32 shard count (0 = unsharded)
//	  n × d × u64 float64 bits (row-major options)
//	u32 CRC-32 (IEEE) of the payload
//
// written to a temp file, fsynced and renamed into place, so a snapshot
// is either wholly present or absent. Files are named
// snap-<generation>.snap in zero-padded hex. The predecessor format
// "TOPRRSN1" — identical but without the shard-count word — is still
// read (as shard count 0), so pre-shard data directories open cleanly;
// new snapshots are always written in the current format.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

const (
	snapMagicV1 = "TOPRRSN1" // legacy: no shard-count word
	snapMagic   = "TOPRRSN2"
)

// SyncMode selects the WAL durability level.
type SyncMode int

// The WAL sync modes: SyncAlways (the default) fsyncs every Apply
// before it returns, so an acknowledged batch survives both process and
// machine crashes. SyncNone leaves flushing to the OS page cache —
// faster, but acknowledged batches within the kernel's writeback window
// can be lost on a machine (not process) crash.
const (
	SyncAlways SyncMode = iota
	SyncNone
)

// String returns the flag name of the sync mode.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("sync(%d)", int(m))
	}
}

// ParseSyncMode maps a flag value to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("unknown sync mode %q (want always or none)", s)
	}
}

// PersistConfig configures a durable store. The zero value of every
// field but Dir is usable: defaults are applied by Open.
type PersistConfig struct {
	// Dir is the data directory holding the base snapshot and WAL
	// segments. It is created if absent.
	Dir string
	// Sync selects the WAL durability level (default SyncAlways).
	Sync SyncMode
	// CompactBytes triggers compaction once the WAL exceeds this many
	// bytes across segments (default 64 MiB).
	CompactBytes int64
	// CompactOps triggers compaction once this many ops accumulate in
	// the WAL (default 32768).
	CompactOps int
	// SegmentBytes rolls the active WAL segment past this size
	// (default 8 MiB).
	SegmentBytes int64
	// Shards records the dataset's shard count in the snapshot metadata
	// (0 = unsharded). When the directory already holds state, the
	// persisted count wins — a reopened dataset keeps its layout — and
	// Shards only seeds fresh or legacy (pre-shard) directories.
	Shards int
}

// withDefaults fills the zero-valued knobs.
func (c PersistConfig) withDefaults() PersistConfig {
	if c.CompactBytes <= 0 {
		c.CompactBytes = 64 << 20
	}
	if c.CompactOps <= 0 {
		c.CompactOps = 1 << 15
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	return c
}

// PersistStats reports the durable layer's state for observability.
type PersistStats struct {
	Persistent     bool       // false for in-memory stores; the other fields are then zero
	WALBytes       int64      // on-disk WAL size across segments (replay cost bound)
	WALSegments    int        // segment count
	WALSyncs       int64      // fsyncs issued; group commit keeps this below the batches applied
	LastCompaction Generation // generation of the newest base snapshot
	// CompactError is the last failed maintenance cycle ("" when
	// healthy). A persistent error — say ENOSPC on the snapshot temp
	// file — means the WAL keeps growing past its thresholds and boot
	// replay cost is no longer bounded; the cycle retries on every
	// Apply.
	CompactError string
}

// PersistStats snapshots the durable layer's state.
func (s *Store) PersistStats() PersistStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal == nil {
		return PersistStats{}
	}
	ps := PersistStats{
		Persistent:     true,
		WALBytes:       s.wal.bytes(),
		WALSegments:    s.wal.segments(),
		WALSyncs:       s.wal.syncs(),
		LastCompaction: s.lastCompact,
	}
	if s.compactErr != nil {
		ps.CompactError = s.compactErr.Error()
	}
	return ps
}

// snapshotName names the base snapshot file of one generation.
func snapshotName(gen Generation) string {
	return fmt.Sprintf("snap-%016x.snap", uint64(gen))
}

// writeSnapshot atomically writes the option set as the base snapshot of
// generation gen with op-sequence watermark seq and shard count shards:
// temp file, fsync, rename, directory fsync.
func writeSnapshot(dir string, gen Generation, seq uint64, pts []vec.Vector, shards int) error {
	d := 0
	if len(pts) > 0 {
		d = pts[0].Dim()
	}
	payload := make([]byte, 8+8+4+4+4+len(pts)*d*8)
	le := binary.LittleEndian
	le.PutUint64(payload[0:], uint64(gen))
	le.PutUint64(payload[8:], seq)
	le.PutUint32(payload[16:], uint32(len(pts)))
	le.PutUint32(payload[20:], uint32(d))
	le.PutUint32(payload[24:], uint32(shards))
	off := 28
	for _, p := range pts {
		for _, x := range p {
			le.PutUint64(payload[off:], math.Float64bits(x))
			off += 8
		}
	}
	buf := make([]byte, 0, len(snapMagic)+len(payload)+4)
	buf = append(buf, snapMagic...)
	buf = append(buf, payload...)
	buf = le.AppendUint32(buf, crc32.ChecksumIEEE(payload))

	path := filepath.Join(dir, snapshotName(gen))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readSnapshot loads and checksums one base snapshot file, accepting
// both the current format and the legacy shard-less one (whose shard
// count reads as 0).
func readSnapshot(path string) (gen Generation, seq uint64, pts []vec.Vector, shards int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, 0, err
	}
	headerLen := 28
	switch {
	case len(data) >= len(snapMagic) && string(data[:len(snapMagic)]) == snapMagic:
	case len(data) >= len(snapMagicV1) && string(data[:len(snapMagicV1)]) == snapMagicV1:
		headerLen = 24 // legacy: no shard-count word
	default:
		return 0, 0, nil, 0, fmt.Errorf("%s: not a snapshot file", path)
	}
	if len(data) < len(snapMagic)+headerLen+4 {
		return 0, 0, nil, 0, fmt.Errorf("%s: not a snapshot file", path)
	}
	le := binary.LittleEndian
	payload := data[len(snapMagic) : len(data)-4]
	sum := le.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, 0, nil, 0, fmt.Errorf("%s: checksum mismatch", path)
	}
	gen = Generation(le.Uint64(payload[0:]))
	seq = le.Uint64(payload[8:])
	n := int(le.Uint32(payload[16:]))
	d := int(le.Uint32(payload[20:]))
	if headerLen == 28 {
		shards = int(le.Uint32(payload[24:]))
	}
	// Bound each factor by the payload before multiplying, so a corrupt
	// (but CRC-colliding) header can neither overflow the size check nor
	// drive a giant allocation.
	rest := len(payload) - headerLen
	if n <= 0 || d <= 0 || d > rest/8 || n != rest/(d*8) || rest%(d*8) != 0 {
		return 0, 0, nil, 0, fmt.Errorf("%s: malformed shape n=%d d=%d (%d payload bytes)", path, n, d, len(payload))
	}
	pts = make([]vec.Vector, n)
	off := headerLen
	for i := range pts {
		p := vec.New(d)
		for j := 0; j < d; j++ {
			p[j] = math.Float64frombits(le.Uint64(payload[off:]))
			off += 8
		}
		pts[i] = p
	}
	return gen, seq, pts, shards, nil
}

// listSnapshots returns the directory's base snapshot paths, newest
// generation first.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	return paths, nil
}

// HasState reports whether dir already holds a recoverable store (a
// base snapshot), in which case Open ignores its bootstrap dataset.
// A missing directory is simply empty state. The files are not
// validated here; Open does that.
func HasState(dir string) (bool, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	return len(snaps) > 0, nil
}

// Open opens (or initializes) a durable store in cfg.Dir.
//
// When the directory already holds state, the dataset is recovered from
// it — the newest valid base snapshot, plus a replay of every complete
// WAL batch after it — and boot is ignored (it may be nil). A torn
// record ends replay: the tear is truncated away and the store resumes
// at the last complete batch, exactly as the recovery contract
// specifies. When the directory is empty, boot seeds generation 1 and
// is written out as the first base snapshot before Open returns.
//
// The caller must Close the store to release the WAL; a crash instead
// of a Close loses nothing that Apply acknowledged under SyncAlways.
func Open(cfg PersistConfig, boot []vec.Vector) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: open: empty data directory")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	// One process owns a data directory at a time: a second opener would
	// truncate and append the same segments the first is writing,
	// interleaving two histories. The flock is released by the kernel on
	// any process death, so a crash never bricks the directory.
	lock, err := os.OpenFile(filepath.Join(cfg.Dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: open: %s is already in use by another store (flock: %v)", cfg.Dir, err)
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()

	// Sweep temp files a crash left mid-snapshot: the rename is the
	// commit point, so a *.tmp is never valid state — without the sweep,
	// each crash-during-compaction would orphan a dataset-sized file.
	if tmps, err := filepath.Glob(filepath.Join(cfg.Dir, "*.tmp")); err == nil {
		for _, p := range tmps {
			os.Remove(p)
		}
	}

	s := &Store{cfg: cfg, gc: &gcCounters{}, lock: lock}
	rs := &replayer{}
	snaps, err := listSnapshots(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	if len(snaps) == 0 {
		// Fresh directory: seed from boot and make generation 1 durable.
		// Refuse if WAL segments survive without any snapshot (an
		// operator deleted the snapshots, or disk damage took them):
		// their index-based ops belong to a dataset we no longer have,
		// and replaying them onto an unrelated bootstrap would silently
		// corrupt it.
		if stale, err := listSegments(cfg.Dir); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		} else if len(stale) > 0 {
			return nil, fmt.Errorf("store: open: %s holds %d WAL segment(s) but no base snapshot; refusing to bootstrap over them (remove the wal-*.seg files to reset)", cfg.Dir, len(stale))
		}
		own, err := checkDataset(boot)
		if err != nil {
			return nil, fmt.Errorf("store: open: empty directory needs a bootstrap dataset: %w", err)
		}
		s.shards = cfg.Shards
		if err := writeSnapshot(cfg.Dir, 1, 0, own, s.shards); err != nil {
			return nil, fmt.Errorf("store: open: base snapshot: %w", err)
		}
		rs.pts, rs.gen = own, 1
		s.lastCompact = 1
	} else {
		// Recover from the newest snapshot that checksums; an older one
		// only wins if the newest is unreadable (a snapshot rename is
		// atomic, so this is disk damage, not a crash artifact).
		var firstErr error
		for _, path := range snaps {
			gen, seq, pts, shards, err := readSnapshot(path)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			rs.pts, rs.gen, rs.seq = pts, gen, seq
			s.lastCompact = gen
			// The persisted shard count wins, so a reopened dataset
			// keeps its layout; a legacy (pre-shard) snapshot adopts the
			// opener's configuration and records it on the next
			// compaction.
			s.shards = shards
			if s.shards == 0 {
				s.shards = cfg.Shards
			}
			break
		}
		if rs.pts == nil {
			return nil, fmt.Errorf("store: open: no readable snapshot: %w", firstErr)
		}
	}
	rs.d = rs.pts[0].Dim()

	// Replay the WAL on top of the snapshot. Records at or below the
	// snapshot generation are already folded in (segments a crashed
	// compaction failed to delete) and are skipped.
	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	for i := range segs {
		valid, torn, err := scanSegment(segs[i].path, rs.apply)
		if err != nil {
			return nil, fmt.Errorf("store: open: replay %s: %w", segs[i].path, err)
		}
		if !torn {
			continue
		}
		if i != len(segs)-1 {
			// Appends are sequential and a segment is fsynced before its
			// successor is created, so a genuine crash tear can only live
			// in the final segment. Damage earlier is corruption of
			// acknowledged, fsynced batches — truncating here would
			// silently amputate every later segment, so refuse and leave
			// the files for the operator.
			return nil, fmt.Errorf("store: open: %s is corrupt mid-WAL (a tear can only be in the last segment); refusing to drop acknowledged batches", segs[i].path)
		}
		// Torn tail of the final segment: the crash point.
		if valid < int64(len(walMagic)) {
			// The tear ate the segment's own magic: appending to the
			// truncated file would put records before a valid header and
			// the *next* boot would discard them all. Drop the file; a
			// fresh, well-formed segment replaces it below.
			if err := os.Remove(segs[i].path); err != nil {
				return nil, fmt.Errorf("store: open: %w", err)
			}
			segs = segs[:i]
		} else {
			if err := os.Truncate(segs[i].path, valid); err != nil {
				return nil, fmt.Errorf("store: open: truncate %s: %w", segs[i].path, err)
			}
			segs[i].size = valid
		}
		// Make the removal/truncation durable before any append: a
		// machine crash must not resurrect the discarded tail next to
		// records written after this recovery.
		if err := syncDir(cfg.Dir); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
		break
	}

	// Publish the single recovered generation: one scorer, tracked once,
	// however many batches replayed.
	s.snap = Snapshot{Gen: rs.gen, Scorer: s.track(topk.NewScorerAt(rs.pts, uint64(rs.gen)))}
	s.seq = rs.seq
	s.log = rs.log
	s.walOps = rs.ops
	s.initWritePath()

	w, err := openWAL(cfg.Dir, segs, rs.gen+1, cfg.Sync == SyncAlways)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s.wal = w
	ok = true
	return s, nil
}

// replayer accumulates boot replay over one working slice, so recovery
// costs O(replayed ops), not O(batches × dataset size): no per-batch
// copy-on-write copy and no per-batch scorer — the recovered generation
// is built once, after the last record. apply skips batches the base
// snapshot already covers and rejects generation gaps (a missing or
// reordered segment, or a fallback to an older base snapshot) and
// validation failures on checksummed data. A rejection fails Open
// rather than truncating: the bytes are intact, so this is not a torn
// tail recovery may cut away — the WAL is left untouched for the
// operator.
type replayer struct {
	pts []vec.Vector
	d   int
	gen Generation
	seq uint64
	ops int // ops replayed; seeds the store's walOps
	log []AppliedOp
}

func (r *replayer) apply(gen Generation, firstSeq uint64, ops []Op) error {
	if gen <= r.gen {
		return nil
	}
	if gen != r.gen+1 {
		return fmt.Errorf("generation %d follows %d", gen, r.gen)
	}
	for i, op := range ops {
		var rec AppliedOp
		pts, err := applyOp(r.pts, r.d, i, op, &rec, nil)
		if err != nil {
			return err
		}
		r.pts = pts
		rec.Seq = firstSeq + uint64(i)
		rec.Gen = gen
		r.log = append(r.log, rec)
	}
	if len(r.log) > logLimit {
		r.log = append([]AppliedOp(nil), r.log[len(r.log)-logLimit/2:]...)
	}
	r.gen = gen
	r.seq = firstSeq + uint64(len(ops)) - 1
	r.ops += len(ops)
	return nil
}

// maintain runs post-Apply WAL maintenance: a snapshot/compaction cycle
// once the byte/op thresholds are crossed, otherwise a segment roll when
// the active segment is past its size. Failures land in compactErr
// (surfaced as PersistStats.CompactError) but never fail the Apply that
// triggered them — the batch is already durable in the WAL — and the
// cycle retries on the next Apply; compactErr clears only when a full
// cycle succeeds.
//
// maintain is called with writeMu held, which owns every WAL file
// operation and excludes concurrent appends; the store's read lock is
// taken only for the instantaneous watermark capture and bookkeeping,
// so readers never stall on the snapshot fsync (it serializes only the
// writers, who wait behind writeMu anyway). Because no append can land
// mid-cycle, the current generation covers every record on disk, and
// the cycle is:
//
//  1. capture the current snapshot as the watermark;
//  2. write the watermark generation as the new base snapshot (atomic
//     temp + rename + directory fsync) from the immutable copy-on-write
//     option slice;
//  3. drop the sealed segments, restart the active one, drop older
//     snapshot files, and advance the compaction watermark.
//
// A crash between the steps is safe in both directions: snapshot-first
// leaves stale segments whose records replay as no-ops, crash-before-
// snapshot leaves the old snapshot plus a longer WAL. A failed cycle
// changes no bookkeeping, so the next Apply retries the whole cycle —
// without creating any new segment file per retry.
func (s *Store) maintain() {
	if s.wal.broken != nil {
		return
	}
	setErr := func(err error) {
		s.mu.Lock()
		s.compactErr = err
		s.mu.Unlock()
	}

	if s.wal.bytes() < s.cfg.CompactBytes && s.walOps < s.cfg.CompactOps {
		if s.wal.activeSize() >= s.cfg.SegmentBytes {
			s.mu.RLock()
			gen := s.snap.Gen
			s.mu.RUnlock()
			if err := s.wal.roll(gen + 1); err != nil {
				setErr(fmt.Errorf("store: wal roll: %w", err))
			} else {
				// Below the compaction thresholds the last compaction
				// necessarily succeeded, so a successful roll means the
				// durable layer is healthy again: clear any stale error.
				setErr(nil)
			}
		}
		return
	}

	// Compaction deletes WAL records, so the base snapshot must cover
	// every record on disk. We hold writeMu — no new batch can be built
	// or appended — but group-committed batches may still be between
	// their fsync and their publish; wait them out so the published
	// snapshot is the WAL tail.
	s.drainPending()
	s.mu.RLock()
	snap, seq := s.snap, s.seq
	s.mu.RUnlock()

	sealed := s.wal.sealedCount()
	opsCovered := s.walOps
	if err := writeSnapshot(s.cfg.Dir, snap.Gen, seq, snap.Scorer.Points(), s.shards); err != nil {
		setErr(fmt.Errorf("store: compact: snapshot: %w", err))
		return
	}
	// The snapshot is durable and covers every record on disk: the
	// sealed segments go, and the active one restarts empty.
	if err := s.wal.dropSealed(sealed); err != nil {
		setErr(fmt.Errorf("store: compact: drop segments: %w", err))
		return
	}
	// The cycle is now committed — the watermark and replay cost moved
	// even if the cosmetic steps below fail — so the bookkeeping
	// advances here, not after them.
	s.walOps -= opsCovered
	s.mu.Lock()
	s.lastCompact = snap.Gen
	s.compactErr = nil
	s.mu.Unlock()
	if snaps, err := listSnapshots(s.cfg.Dir); err == nil {
		for _, path := range snaps {
			if path != filepath.Join(s.cfg.Dir, snapshotName(snap.Gen)) {
				os.Remove(path)
			}
		}
	}
	// Restart the active segment empty; on failure it keeps serving
	// appends (its stale records replay as no-ops) and the restart
	// retries on a later roll or cycle.
	if err := s.wal.restartActive(snap.Gen + 1); err != nil {
		setErr(fmt.Errorf("store: compact: restart segment: %w", err))
	}
}
