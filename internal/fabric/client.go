package fabric

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client defaults.
const (
	DefaultConns       = 2
	DefaultTimeout     = 2 * time.Second
	DefaultDialTimeout = 1 * time.Second
)

// ErrDraining fails new requests once a client has begun its graceful
// drain; the coordinator answers those shards locally.
var ErrDraining = errors.New("fabric: client draining")

// ClientConfig configures one worker connection pool.
type ClientConfig struct {
	Addr        string        // worker address (host:port)
	Dataset     string        // dataset pinned by the handshake
	Conns       int           // pipelined connections (default DefaultConns)
	Timeout     time.Duration // per-request deadline (default DefaultTimeout)
	DialTimeout time.Duration // TCP connect budget (default DefaultDialTimeout)
	// Serial turns off pipelining: each connection carries at most one
	// in-flight request, so a scatter across S shards pays S sequential
	// round trips per connection. It exists as the benchmark referee —
	// the "serial-RPC mode" the fabric experiment compares pipelined
	// scatter against — not for production use.
	Serial bool
}

// WireStats is a client's cumulative transport accounting.
type WireStats struct {
	BytesOut    int64 // request bytes written (frames included)
	BytesIn     int64 // response bytes read
	MaxInflight int64 // peak concurrently in-flight requests (pipelining depth reached)
	Partials    int64 // partial responses successfully received
}

// Client is a pipelined connection pool to one worker process. Many
// requests ride each connection concurrently; responses are matched by
// request id, so a scatter across shards overlaps on the wire. A Client
// is safe for concurrent use.
type Client struct {
	cfg ClientConfig

	reqID atomic.Uint64

	mu       sync.Mutex
	conns    []*clientConn
	next     int
	draining bool
	closed   bool
	inflight sync.WaitGroup // every in-flight rpc; Drain waits on it

	syncMu    sync.Mutex // serializes Sync pushes
	syncedGen atomic.Uint64

	bytesOut    atomic.Int64
	bytesIn     atomic.Int64
	inflightN   atomic.Int64
	maxInflight atomic.Int64
	partials    atomic.Int64
}

// NewClient builds a client (connections dial lazily on first use).
func NewClient(cfg ClientConfig) *Client {
	if cfg.Conns <= 0 {
		cfg.Conns = DefaultConns
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.Dataset == "" {
		cfg.Dataset = "default"
	}
	return &Client{cfg: cfg, conns: make([]*clientConn, cfg.Conns)}
}

// clientConn is one pipelined connection: a writer mutex keeps frames
// atomic, a reader goroutine dispatches responses to the pending table
// by request id, and death fails every pending request at once.
type clientConn struct {
	c       net.Conn
	wmu     sync.Mutex
	mu      sync.Mutex
	pending map[uint64]chan response
	dead    bool
	serial  chan struct{} // nil unless ClientConfig.Serial: one token = one in-flight request
}

type response struct {
	f   Frame
	err error
}

// SyncedGen reports the last generation this client successfully
// pushed to the worker (0 = never synced).
func (cl *Client) SyncedGen() uint64 { return cl.syncedGen.Load() }

// ResetSync forgets the synced generation, forcing the next Sync to
// push the full state again. The coordinator calls it when a worker
// refuses a partial for a generation the client believed pushed — the
// signature of a worker restart that lost its (stateless) copy.
func (cl *Client) ResetSync() { cl.syncedGen.Store(0) }

// Wire reports the client's cumulative transport accounting.
func (cl *Client) Wire() WireStats {
	return WireStats{
		BytesOut:    cl.bytesOut.Load(),
		BytesIn:     cl.bytesIn.Load(),
		MaxInflight: cl.maxInflight.Load(),
		Partials:    cl.partials.Load(),
	}
}

// getConn picks the next pool slot round-robin, dialing (and
// handshaking) it if empty or dead.
func (cl *Client) getConn() (*clientConn, error) {
	cl.mu.Lock()
	if cl.closed || cl.draining {
		cl.mu.Unlock()
		return nil, ErrDraining
	}
	slot := cl.next % len(cl.conns)
	cl.next++
	cc := cl.conns[slot]
	if cc != nil {
		cc.mu.Lock()
		dead := cc.dead
		cc.mu.Unlock()
		if !dead {
			cl.mu.Unlock()
			return cc, nil
		}
	}
	cl.mu.Unlock()

	// Dial outside the pool lock; a racing redial of the same slot is
	// harmless (the loser's connection is simply dropped).
	nc, err := net.DialTimeout("tcp", cl.cfg.Addr, cl.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("fabric: dial %s: %w", cl.cfg.Addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cc = &clientConn{c: nc, pending: make(map[uint64]chan response)}
	if cl.cfg.Serial {
		cc.serial = make(chan struct{}, 1)
		cc.serial <- struct{}{}
	}

	// Handshake synchronously so the pool never holds an unpinned
	// connection.
	hello := Frame{Type: FrameHello, ReqID: cl.reqID.Add(1), Payload: Hello{Dataset: cl.cfg.Dataset}.encode()}
	nc.SetDeadline(time.Now().Add(cl.cfg.Timeout))
	n, err := WriteFrame(nc, hello)
	cl.bytesOut.Add(int64(n))
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("fabric: handshake write: %w", err)
	}
	ack, rn, err := ReadFrame(nc)
	cl.bytesIn.Add(int64(rn))
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("fabric: handshake read: %w", err)
	}
	nc.SetDeadline(time.Time{})
	switch ack.Type {
	case FrameHelloAck:
	case FrameError:
		nc.Close()
		if em, derr := decodeError(ack.Payload); derr == nil {
			return nil, codeErr(em.Code, em.Msg)
		}
		return nil, ErrRemote
	default:
		nc.Close()
		return nil, fmt.Errorf("%w: handshake answered with frame type %d", ErrRemote, ack.Type)
	}

	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		nc.Close()
		return nil, ErrDraining
	}
	cl.conns[slot] = cc
	cl.mu.Unlock()
	go cl.readLoop(cc)
	return cc, nil
}

// readLoop dispatches one connection's responses until it dies, then
// fails every pending request (each falls back to a local partial).
func (cl *Client) readLoop(cc *clientConn) {
	for {
		f, n, err := ReadFrame(cc.c)
		cl.bytesIn.Add(int64(n))
		if err != nil {
			cc.mu.Lock()
			cc.dead = true
			pend := cc.pending
			cc.pending = make(map[uint64]chan response)
			cc.mu.Unlock()
			cc.c.Close()
			for _, ch := range pend {
				ch <- response{err: fmt.Errorf("fabric: connection lost: %w", err)}
			}
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.ReqID]
		if ok {
			delete(cc.pending, f.ReqID)
		}
		cc.mu.Unlock()
		if ok {
			ch <- response{f: f}
		}
	}
}

// rpc sends one frame and waits for its response, honoring ctx and the
// per-request timeout. Responses are matched by request id, so many
// rpcs ride one connection concurrently.
func (cl *Client) rpc(ctx context.Context, req Frame, timeout time.Duration) (Frame, error) {
	cl.mu.Lock()
	if cl.closed || cl.draining {
		cl.mu.Unlock()
		return Frame{}, ErrDraining
	}
	cl.inflight.Add(1)
	cl.mu.Unlock()
	defer cl.inflight.Done()

	cc, err := cl.getConn()
	if err != nil {
		return Frame{}, err
	}

	if cc.serial != nil {
		select {
		case <-cc.serial:
			defer func() { cc.serial <- struct{}{} }()
		case <-ctx.Done():
			return Frame{}, ctx.Err()
		}
	}

	n := cl.inflightN.Add(1)
	for {
		peak := cl.maxInflight.Load()
		if n <= peak || cl.maxInflight.CompareAndSwap(peak, n) {
			break
		}
	}
	defer cl.inflightN.Add(-1)

	ch := make(chan response, 1)
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return Frame{}, errors.New("fabric: connection lost")
	}
	cc.pending[req.ReqID] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	wn, err := WriteFrame(cc.c, req)
	cc.wmu.Unlock()
	cl.bytesOut.Add(int64(wn))
	if err != nil {
		cc.mu.Lock()
		delete(cc.pending, req.ReqID)
		cc.dead = true
		cc.mu.Unlock()
		cc.c.Close()
		return Frame{}, fmt.Errorf("fabric: write: %w", err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.err != nil {
			return Frame{}, resp.err
		}
		return resp.f, nil
	case <-timer.C:
		cc.mu.Lock()
		delete(cc.pending, req.ReqID)
		cc.mu.Unlock()
		return Frame{}, fmt.Errorf("fabric: request timed out after %v", timeout)
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, req.ReqID)
		cc.mu.Unlock()
		return Frame{}, ctx.Err()
	}
}

// Partial fetches one shard's partial top-k at vertex w, valid only at
// exactly generation gen. A nil members asks for the shard's full
// member list (the whole-dataset configuration); otherwise the partial
// covers exactly the given ascending option slots. The returned slots
// and score bits are the worker's verbatim — the caller merges them
// unchanged.
func (cl *Client) Partial(ctx context.Context, gen uint64, shard, k int, w []float64, members []uint32) ([]uint32, []float64, error) {
	req := Frame{
		Type:    FramePartialReq,
		ReqID:   cl.reqID.Add(1),
		Payload: PartialReq{Gen: gen, Shard: uint32(shard), K: uint32(k), W: w, Members: members}.encode(),
	}
	f, err := cl.rpc(ctx, req, cl.cfg.Timeout)
	if err != nil {
		return nil, nil, err
	}
	switch f.Type {
	case FramePartialResp:
		resp, err := decodePartialResp(f.Payload)
		if err != nil {
			return nil, nil, err
		}
		if resp.Gen != gen {
			return nil, nil, fmt.Errorf("%w: answered for generation %d, want %d", ErrGenMismatch, resp.Gen, gen)
		}
		cl.partials.Add(1)
		return resp.Idx, resp.Scores, nil
	case FrameError:
		em, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, nil, derr
		}
		return nil, nil, codeErr(em.Code, em.Msg)
	default:
		return nil, nil, fmt.Errorf("%w: partial answered with frame type %d", ErrRemote, f.Type)
	}
}

// Sync pushes one dataset generation to the worker (full state — the
// worker replaces, never replays) and records it as synced. Concurrent
// callers serialize; a sync that loses the race to a newer generation
// is skipped.
func (cl *Client) Sync(ctx context.Context, m SyncMsg) error {
	cl.syncMu.Lock()
	defer cl.syncMu.Unlock()
	if cl.syncedGen.Load() >= m.Gen && m.Gen != 0 {
		return nil
	}
	req := Frame{Type: FrameSync, ReqID: cl.reqID.Add(1), Payload: m.encode()}
	// A sync ships the whole dataset; give it a wider budget than a
	// partial round trip.
	timeout := 10 * cl.cfg.Timeout
	f, err := cl.rpc(ctx, req, timeout)
	if err != nil {
		return err
	}
	switch f.Type {
	case FrameSyncAck:
		cl.syncedGen.Store(m.Gen)
		return nil
	case FrameError:
		em, derr := decodeError(f.Payload)
		if derr != nil {
			return derr
		}
		return codeErr(em.Code, em.Msg)
	default:
		return fmt.Errorf("%w: sync answered with frame type %d", ErrRemote, f.Type)
	}
}

// Stats fetches the worker's counters for the client's dataset.
func (cl *Client) Stats(ctx context.Context) (StatsResp, error) {
	req := Frame{Type: FrameStatsReq, ReqID: cl.reqID.Add(1)}
	f, err := cl.rpc(ctx, req, cl.cfg.Timeout)
	if err != nil {
		return StatsResp{}, err
	}
	switch f.Type {
	case FrameStatsResp:
		return decodeStatsResp(f.Payload)
	case FrameError:
		em, derr := decodeError(f.Payload)
		if derr != nil {
			return StatsResp{}, derr
		}
		return StatsResp{}, codeErr(em.Code, em.Msg)
	default:
		return StatsResp{}, fmt.Errorf("%w: stats answered with frame type %d", ErrRemote, f.Type)
	}
}

// Drain gracefully quiesces the client: new requests fail fast with
// ErrDraining (the coordinator answers those shards locally), in-flight
// requests get until ctx expires to finish, then every connection
// closes with a clean FIN instead of an abrupt reset.
func (cl *Client) Drain(ctx context.Context) error {
	cl.mu.Lock()
	cl.draining = true
	cl.mu.Unlock()

	done := make(chan struct{})
	go func() {
		cl.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	cl.Close()
	return err
}

// Close tears the pool down immediately; pending requests fail.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	conns := append([]*clientConn(nil), cl.conns...)
	cl.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.c.Close()
		}
	}
	return nil
}
