// Package vec provides small dense vector and matrix primitives used by
// the geometry, linear-programming and core TopRR packages.
//
// All computations are on float64 with a shared tolerance (Eps). The
// package is deliberately minimal: the polytopes handled by TopRR live
// in at most a dozen dimensions, so simple O(n^3) dense algorithms
// (Gaussian elimination, rank) are both adequate and easy to audit.
package vec

import (
	"fmt"
	"math"
	"strings"
)

// Eps is the global numeric tolerance used across geometric predicates.
const Eps = 1e-9

// Vector is a point or direction in d-dimensional space.
type Vector []float64

// New returns a zero vector of dimension d.
func New(d int) Vector { return make(Vector, d) }

// Of builds a vector from its components.
func Of(xs ...float64) Vector { return Vector(xs) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Dot returns the inner product of v and u. It panics if dimensions differ.
func (v Vector) Dot(u Vector) float64 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("vec: dot of mismatched dimensions %d and %d", len(v), len(u)))
	}
	var s float64
	for i, x := range v {
		s += x * u[i]
	}
	return s
}

// Add returns v + u as a new vector.
func (v Vector) Add(u Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] += u[i]
	}
	return c
}

// Sub returns v - u as a new vector.
func (v Vector) Sub(u Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] -= u[i]
	}
	return c
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	c := v.Clone()
	for i := range c {
		c[i] *= a
	}
	return c
}

// AddScaled returns v + a*u as a new vector.
func (v Vector) AddScaled(a float64, u Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] += a * u[i]
	}
	return c
}

// Lerp returns (1-t)*v + t*u, the point at parameter t on segment [v,u].
func (v Vector) Lerp(u Vector, t float64) Vector {
	c := make(Vector, len(v))
	for i := range c {
		c[i] = (1-t)*v[i] + t*u[i]
	}
	return c
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the L-infinity norm of v.
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Dist returns the Euclidean distance between v and u.
func (v Vector) Dist(u Vector) float64 { return v.Sub(u).Norm() }

// Sum returns the sum of the components of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Equal reports whether v and u agree component-wise within tol.
func (v Vector) Equal(u Vector, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-u[i]) > tol {
			return false
		}
	}
	return true
}

// String renders v with a fixed short precision, for logs and tests.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.6g", x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key quantizes v to a hashable string identity. Two vectors within
// roughly quantum of each other in every coordinate map to the same key,
// which is how the geometry engine deduplicates vertices. The encoding
// is binary (8 bytes per coordinate) because key construction sits on
// the hot path of polytope construction and top-k caching.
func (v Vector) Key(quantum float64) string {
	b := make([]byte, 0, 8*len(v))
	for _, x := range v {
		q := int64(math.Round(x / quantum))
		b = append(b,
			byte(q), byte(q>>8), byte(q>>16), byte(q>>24),
			byte(q>>32), byte(q>>40), byte(q>>48), byte(q>>56))
	}
	return string(b)
}

// FNV-1a parameters (64-bit variant).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hash is the allocation-free counterpart of Key: it folds the same
// quantized coordinates (int64(round(x/quantum))) into a 64-bit FNV-1a
// digest. Two vectors with equal Key(quantum) always have equal
// Hash(quantum); distinct keys may collide with probability ~2^-64 per
// pair, which the dedup and cache layers consciously accept in exchange
// for a zero-allocation identity on the hot path.
func (v Vector) Hash(quantum float64) uint64 {
	h := fnvOffset
	for _, x := range v {
		q := uint64(int64(math.Round(x / quantum)))
		for s := 0; s < 64; s += 8 {
			h ^= (q >> s) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// HashFold extends an existing Hash digest with one more quantized
// scalar, so composite identities (e.g. a halfspace's coefficients plus
// its offset) hash without assembling an intermediate vector.
func HashFold(h uint64, x, quantum float64) uint64 {
	q := uint64(int64(math.Round(x / quantum)))
	for s := 0; s < 64; s += 8 {
		h ^= (q >> s) & 0xff
		h *= fnvPrime
	}
	return h
}

// AddInPlace sets v = v + u, allocating nothing.
func (v Vector) AddInPlace(u Vector) {
	for i := range v {
		v[i] += u[i]
	}
}

// SubInPlace sets v = v - u, allocating nothing.
func (v Vector) SubInPlace(u Vector) {
	for i := range v {
		v[i] -= u[i]
	}
}

// ScaleInPlace sets v = a*v, allocating nothing.
func (v Vector) ScaleInPlace(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AddScaledInPlace sets v = v + a*u, allocating nothing.
func (v Vector) AddScaledInPlace(a float64, u Vector) {
	for i := range v {
		v[i] += a * u[i]
	}
}

// LerpInto writes (1-t)*v + t*u into dst and returns it, reusing dst's
// storage when it has sufficient capacity. The arithmetic matches Lerp
// exactly (same operation order), so results are bit-identical.
func (v Vector) LerpInto(dst Vector, u Vector, t float64) Vector {
	if cap(dst) < len(v) {
		dst = make(Vector, len(v))
	}
	dst = dst[:len(v)]
	for i := range dst {
		dst[i] = (1-t)*v[i] + t*u[i]
	}
	return dst
}

// CopyInto copies v into dst and returns it, reusing dst's storage when
// it has sufficient capacity.
func (v Vector) CopyInto(dst Vector) Vector {
	if cap(dst) < len(v) {
		dst = make(Vector, len(v))
	}
	dst = dst[:len(v)]
	copy(dst, v)
	return dst
}

// Centroid returns the arithmetic mean of the given points. It panics on
// an empty input.
func Centroid(pts []Vector) Vector {
	if len(pts) == 0 {
		panic("vec: centroid of empty point set")
	}
	c := New(len(pts[0]))
	for _, p := range pts {
		for i := range c {
			c[i] += p[i]
		}
	}
	inv := 1 / float64(len(pts))
	for i := range c {
		c[i] *= inv
	}
	return c
}
