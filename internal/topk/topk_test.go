package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"toprr/internal/vec"
)

// paperDataset is the 2-D laptop dataset of Figure 1 in the paper.
func paperDataset() []vec.Vector {
	return []vec.Vector{
		vec.Of(0.9, 0.4), // p1
		vec.Of(0.7, 0.9), // p2
		vec.Of(0.6, 0.2), // p3
		vec.Of(0.3, 0.8), // p4
		vec.Of(0.2, 0.3), // p5
		vec.Of(0.1, 0.1), // p6
	}
}

func TestScoreMatchesFullWeight(t *testing.T) {
	s := NewScorer(paperDataset())
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		w := vec.Of(rng.Float64())
		full := s.FullWeight(w)
		for i := 0; i < s.Len(); i++ {
			want := full.Dot(s.Point(i))
			if got := s.Score(w, i); math.Abs(got-want) > 1e-12 {
				t.Fatalf("score mismatch at option %d: %v vs %v", i, got, want)
			}
		}
	}
}

func TestFullWeightNormalization(t *testing.T) {
	s := NewScorer([]vec.Vector{vec.Of(1, 2, 3)})
	full := s.FullWeight(vec.Of(0.2, 0.3))
	if math.Abs(full.Sum()-1) > 1e-12 {
		t.Errorf("full weight sums to %v", full.Sum())
	}
	if !full.Equal(vec.Of(0.2, 0.3, 0.5), 1e-12) {
		t.Errorf("full weight = %v", full)
	}
}

// TestPaperRunningExample reproduces the top-3 structure of Figure 1(d):
// kIPR boundaries at w=0.4 and w=0.67 within wR=[0.2, 0.8].
func TestPaperRunningExample(t *testing.T) {
	s := NewScorer(paperDataset())
	cases := []struct {
		w       float64
		wantSet []int // option indices (0-based: p1=0 ... p6=5)
		wantKth int
	}{
		{0.25, []int{0, 1, 3}, 0}, // region [0.2,0.4]: {p1,p2,p4}, 3rd is p1
		{0.5, []int{0, 1, 3}, 3},  // region [0.4,0.67]: {p1,p2,p4}, 3rd is p4
		{0.7, []int{0, 1, 2}, 2},  // region [0.67,0.8]: {p1,p2,p3}, 3rd is p3
	}
	for _, c := range cases {
		r := s.TopK(vec.Of(c.w), 3, nil)
		got := append([]int(nil), r.Ordered...)
		sort.Ints(got)
		want := append([]int(nil), c.wantSet...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("w=%v: top-3 set %v, want %v", c.w, got, want)
			}
		}
		if r.Kth() != c.wantKth {
			t.Errorf("w=%v: kth = p%d, want p%d", c.w, r.Kth()+1, c.wantKth+1)
		}
	}
}

func TestTopKOrderAndKthScore(t *testing.T) {
	s := NewScorer(paperDataset())
	r := s.TopK(vec.Of(0.8), 3, nil)
	// At w=0.8: scores p1=0.8, p2=0.74, p3=0.52, p4=0.4, p5=0.22, p6=0.1.
	if r.Ordered[0] != 0 || r.Ordered[1] != 1 || r.Ordered[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", r.Ordered)
	}
	if math.Abs(r.KthScore-0.52) > 1e-12 {
		t.Errorf("KthScore = %v, want 0.52", r.KthScore)
	}
}

func TestTopKActiveSubset(t *testing.T) {
	s := NewScorer(paperDataset())
	// Exclude p1 and p2: top-1 at w=0.8 among the rest is p3.
	r := s.TopK(vec.Of(0.8), 1, []int{2, 3, 4, 5})
	if r.Ordered[0] != 2 {
		t.Errorf("top-1 of subset = %d, want 2", r.Ordered[0])
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	s := NewScorer([]vec.Vector{vec.Of(0.5, 0.5), vec.Of(0.5, 0.5), vec.Of(0.1, 0.1)})
	r := s.TopK(vec.Of(0.4), 2, nil)
	if r.Ordered[0] != 0 || r.Ordered[1] != 1 {
		t.Errorf("ties must break by index: %v", r.Ordered)
	}
}

func TestTopKPanics(t *testing.T) {
	s := NewScorer(paperDataset())
	for _, k := range []int{0, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			s.TopK(vec.Of(0.5), k, nil)
		}()
	}
}

func TestResultKeysAndComparison(t *testing.T) {
	s := NewScorer(paperDataset())
	a := s.TopK(vec.Of(0.25), 3, nil)
	b := s.TopK(vec.Of(0.3), 3, nil)  // same kIPR as 0.25
	c := s.TopK(vec.Of(0.75), 3, nil) // different region
	if !a.SameSet(b) || !a.SameKth(b) {
		t.Error("results within a kIPR must agree")
	}
	if a.SameSet(c) {
		t.Error("different regions should differ in set")
	}
	d := s.TopK(vec.Of(0.5), 3, nil) // same set as a, different kth
	if !a.SameSet(d) {
		t.Error("sets at 0.25 and 0.5 should agree")
	}
	if a.SameKth(d) {
		t.Error("kth at 0.25 and 0.5 should differ")
	}
	if !a.Contains(3) || a.Contains(5) {
		t.Error("Contains wrong")
	}
	if a.OrderKey() == d.OrderKey() {
		t.Error("order keys should differ when kth differs")
	}
}

func TestCacheHitsAndCorrectness(t *testing.T) {
	s := NewScorer(paperDataset())
	c := NewCache(s, 3, nil)
	w := vec.Of(0.33)
	r1 := c.Get(w)
	r2 := c.Get(w.Clone())
	if r1 != r2 {
		t.Error("cache should return the identical result pointer")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", hits, misses)
	}
	direct := s.TopK(w, 3, nil)
	if r1.OrderKey() != direct.OrderKey() {
		t.Error("cached result differs from direct computation")
	}
	if c.K() != 3 || c.Active() != nil || c.Scorer() != s {
		t.Error("accessor plumbing wrong")
	}
}

func TestScorePointArbitrary(t *testing.T) {
	p := vec.Of(0.2, 0.9)
	w := vec.Of(0.3)
	want := 0.3*0.2 + 0.7*0.9
	if got := ScorePoint(w, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScorePoint = %v, want %v", got, want)
	}
}

func TestHighDimScoring(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 8
	pts := make([]vec.Vector, 50)
	for i := range pts {
		pts[i] = vec.New(d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	s := NewScorer(pts)
	w := vec.New(d - 1)
	for j := range w {
		w[j] = rng.Float64() / float64(d)
	}
	full := s.FullWeight(w)
	r := s.TopK(w, 10, nil)
	// Verify against brute force.
	best := make([]float64, 0, len(pts))
	for _, p := range pts {
		best = append(best, full.Dot(p))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(best)))
	if math.Abs(r.KthScore-best[9]) > 1e-12 {
		t.Errorf("KthScore = %v, want %v", r.KthScore, best[9])
	}
}

func TestNewScorerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScorer(nil)
}
