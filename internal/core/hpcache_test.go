package core

import (
	"testing"

	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

func hpPts() []vec.Vector {
	return []vec.Vector{
		vec.Of(0.1, 0.9),
		vec.Of(0.5, 0.5),
		vec.Of(0.9, 0.1),
	}
}

// TestHyperplaneCacheGenerationChecks: a cache serves and accepts
// entries only for its current generation's scorer, so solves pinned to
// an older snapshot can neither read nor publish stale geometry.
func TestHyperplaneCacheGenerationChecks(t *testing.T) {
	sc1 := topk.NewScorerAt(hpPts(), 1)
	c := NewHyperplaneCache(sc1)

	e := hpEntry{hs: geom.NewHalfspace(vec.Of(1), 0.5), ok: true}
	c.storeFor(sc1, 0, 1, e)
	if _, ok := c.lookupFor(sc1, 0, 1); !ok {
		t.Fatal("current-generation lookup missed")
	}

	sc2 := topk.NewScorerAt(hpPts(), 2)
	if _, ok := c.lookupFor(sc2, 0, 1); ok {
		t.Error("foreign scorer read a cached hyperplane")
	}
	c.storeFor(sc2, 1, 2, e)
	if c.Len() != 1 {
		t.Error("foreign scorer stored into the cache")
	}
}

// TestHyperplaneCacheAdvance: advancing drops exactly the pairs touching
// a dirty slot; an insert (no dirty existing slots) keeps everything.
func TestHyperplaneCacheAdvance(t *testing.T) {
	sc1 := topk.NewScorerAt(hpPts(), 1)
	c := NewHyperplaneCache(sc1)
	e := hpEntry{hs: geom.NewHalfspace(vec.Of(1), 0.5), ok: true}
	c.storeFor(sc1, 0, 1, e)
	c.storeFor(sc1, 1, 2, e)
	c.storeFor(sc1, 0, 2, e)

	// Insert: nothing existing is dirty, every hyperplane survives.
	sc2 := topk.NewScorerAt(append(hpPts(), vec.Of(0.3, 0.3)), 2)
	c.Advance(sc2, []int{3})
	if c.Len() != 3 {
		t.Fatalf("insert advance dropped entries: len=%d", c.Len())
	}
	if _, ok := c.lookupFor(sc2, 0, 1); !ok {
		t.Error("carried-forward hyperplane not served to the new generation")
	}
	if _, ok := c.lookupFor(sc1, 0, 1); ok {
		t.Error("old generation still served after advance")
	}

	// Update of slot 1: exactly the pairs involving 1 go.
	sc3 := topk.NewScorerAt(append(hpPts(), vec.Of(0.3, 0.3)), 3)
	c.Advance(sc3, []int{1})
	if c.Len() != 1 {
		t.Fatalf("dirty-slot advance kept %d entries, want 1", c.Len())
	}
	if _, ok := c.lookupFor(sc3, 0, 2); !ok {
		t.Error("pair avoiding the dirty slot should survive")
	}
	if c.Evictions() != 2 {
		t.Errorf("evictions = %d, want 2", c.Evictions())
	}
}
