package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// DefaultMemoLimit bounds a worker dataset's memoized partials (per
// resident generation); past it, partials compute without being
// retained.
const DefaultMemoLimit = 1 << 18

// EngineBackend is the worker-side Backend: per dataset it holds one
// resident generation — a read-only scorer plus the per-shard member
// lists of the coordinator's solve plane — and serves partial top-k
// requests off it, memoizing per (shard, k, vertex) exactly like the
// coordinator's own shard memos. Every partial is computed by the same
// topk.PartialTopK the in-process plane uses, over member lists derived
// by the same content-hash assignment, so worker answers are
// bit-identical to local ones. It is safe for concurrent use.
type EngineBackend struct {
	memoLimit   int
	maxDatasets int

	mu       sync.RWMutex
	datasets map[string]*workerDataset
}

// BackendConfig tunes an EngineBackend (zero fields keep defaults).
type BackendConfig struct {
	MemoLimit   int // memoized partials per dataset (default DefaultMemoLimit)
	MaxDatasets int // resident datasets (default 64)
}

// NewEngineBackend builds an empty backend; datasets appear when a
// coordinator syncs them.
func NewEngineBackend(cfg BackendConfig) *EngineBackend {
	if cfg.MemoLimit <= 0 {
		cfg.MemoLimit = DefaultMemoLimit
	}
	if cfg.MaxDatasets <= 0 {
		cfg.MaxDatasets = 64
	}
	return &EngineBackend{
		memoLimit:   cfg.MemoLimit,
		maxDatasets: cfg.MaxDatasets,
		datasets:    make(map[string]*workerDataset),
	}
}

// workerDataset is one dataset's resident generation on the worker.
type workerDataset struct {
	mu      sync.RWMutex
	gen     uint64
	shards  int
	scorer  *topk.Scorer
	members [][]int // per-shard member slots, ascending

	memoMu sync.Mutex
	memo   map[partialKey]*memoPartial

	partials atomic.Uint64 // computed since boot
	hits     atomic.Uint64 // served from memo
}

type partialKey struct {
	shard int
	k     int
	wh    uint64
	mh    uint64 // FNV-1a over an explicit member list (0 = whole shard)
}

// membersHash folds an explicit member list into the memo key (FNV-1a
// over the slot values). Whole-shard requests hash to 0, which no
// non-empty list produces (the FNV offset basis is non-zero).
func membersHash(members []uint32) uint64 {
	if len(members) == 0 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, s := range members {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(s >> shift))
			h *= 1099511628211
		}
	}
	return h
}

type memoPartial struct {
	idx    []uint32
	scores []float64
}

func (b *EngineBackend) dataset(name string, create bool) (*workerDataset, error) {
	b.mu.RLock()
	ds := b.datasets[name]
	b.mu.RUnlock()
	if ds != nil || !create {
		return ds, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ds = b.datasets[name]; ds != nil {
		return ds, nil
	}
	if len(b.datasets) >= b.maxDatasets {
		return nil, Refusal{Code: CodeUnknownDataset, Msg: fmt.Sprintf("worker at its %d-dataset cap", b.maxDatasets)}
	}
	ds = &workerDataset{memo: make(map[partialKey]*memoPartial)}
	b.datasets[name] = ds
	return ds, nil
}

// Hello reports the resident generation for a dataset (0 = unsynced).
func (b *EngineBackend) Hello(name string) (uint64, uint32, error) {
	ds, _ := b.dataset(name, false)
	if ds == nil {
		return 0, 0, nil
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.gen, uint32(ds.shards), nil
}

// Sync atomically replaces a dataset's resident generation: a new
// scorer, fresh per-shard member lists, and an empty memo. Workers
// never replay deltas — the coordinator ships whole generations
// (docs/PERSISTENCE.md: resync, don't replay).
func (b *EngineBackend) Sync(name string, m SyncMsg) error {
	if m.Dim < 2 || m.Shards < 1 || m.Shards > uint32(topk.MaxShards) {
		return Refusal{Code: CodeBadRequest, Msg: fmt.Sprintf("sync dim=%d shards=%d", m.Dim, m.Shards)}
	}
	n := len(m.Pts) / int(m.Dim)
	if n == 0 {
		return Refusal{Code: CodeBadRequest, Msg: "sync with empty dataset"}
	}
	ds, err := b.dataset(name, true)
	if err != nil {
		return err
	}
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = vec.Vector(m.Pts[i*int(m.Dim) : (i+1)*int(m.Dim)])
	}
	scorer := topk.NewScorerAt(pts, m.Gen)
	assign := topk.ShardAssignment(scorer, int(m.Shards))
	members := make([][]int, m.Shards)
	for slot, sh := range assign {
		members[sh] = append(members[sh], slot)
	}

	ds.mu.Lock()
	ds.gen = m.Gen
	ds.shards = int(m.Shards)
	ds.scorer = scorer
	ds.members = members
	ds.mu.Unlock()
	ds.memoMu.Lock()
	ds.memo = make(map[partialKey]*memoPartial)
	ds.memoMu.Unlock()
	return nil
}

// Partial answers one shard's partial top-k request at exactly the
// generation it names, refusing any other resident generation so the
// coordinator's bit-identity contract holds.
func (b *EngineBackend) Partial(name string, req PartialReq) (PartialResp, error) {
	ds, _ := b.dataset(name, false)
	if ds == nil {
		return PartialResp{}, Refusal{Code: CodeNotSynced, Msg: "dataset never synced"}
	}
	ds.mu.RLock()
	gen, shards, scorer, members := ds.gen, ds.shards, ds.scorer, ds.members
	ds.mu.RUnlock()
	if scorer == nil {
		return PartialResp{}, Refusal{Code: CodeNotSynced, Msg: "dataset never synced"}
	}
	if gen != req.Gen {
		return PartialResp{}, Refusal{Code: CodeGenMismatch, Msg: fmt.Sprintf("resident generation %d, request wants %d", gen, req.Gen)}
	}
	if int(req.Shard) >= shards {
		return PartialResp{}, Refusal{Code: CodeBadRequest, Msg: fmt.Sprintf("shard %d of %d", req.Shard, shards)}
	}
	if req.K < 1 || len(req.W) != scorer.Dim()-1 {
		return PartialResp{}, Refusal{Code: CodeBadRequest, Msg: fmt.Sprintf("k=%d |w|=%d for dim %d", req.K, len(req.W), scorer.Dim())}
	}
	// An explicit member list restricts the partial to those slots (a
	// prefiltered or derived configuration); the decoder guarantees it
	// ascends, so only the upper bound needs checking here.
	over := members[req.Shard]
	if n := len(req.Members); n > 0 {
		if int(req.Members[n-1]) >= scorer.Len() {
			return PartialResp{}, Refusal{Code: CodeBadRequest, Msg: fmt.Sprintf("member slot %d of %d options", req.Members[n-1], scorer.Len())}
		}
		over = make([]int, n)
		for i, s := range req.Members {
			over[i] = int(s)
		}
	}

	w := vec.Vector(req.W)
	key := partialKey{shard: int(req.Shard), k: int(req.K), wh: w.Hash(1e-10), mh: membersHash(req.Members)}
	ds.memoMu.Lock()
	if p, ok := ds.memo[key]; ok {
		ds.memoMu.Unlock()
		ds.hits.Add(1)
		return PartialResp{Gen: gen, Idx: p.idx, Scores: p.scores}, nil
	}
	ds.memoMu.Unlock()

	idx, scores := topk.PartialTopK(scorer, over, w, int(req.K))
	p := &memoPartial{idx: make([]uint32, len(idx)), scores: scores}
	for i, x := range idx {
		p.idx[i] = uint32(x)
	}
	ds.partials.Add(1)
	ds.memoMu.Lock()
	if len(ds.memo) < b.memoLimit {
		ds.memo[key] = p
	}
	ds.memoMu.Unlock()
	return PartialResp{Gen: gen, Idx: p.idx, Scores: p.scores}, nil
}

// Stats reports one dataset's counters.
func (b *EngineBackend) Stats(name string) StatsResp {
	ds, _ := b.dataset(name, false)
	if ds == nil {
		return StatsResp{}
	}
	ds.mu.RLock()
	gen := ds.gen
	ds.mu.RUnlock()
	return StatsResp{Gen: gen, Partials: ds.partials.Load(), Hits: ds.hits.Load()}
}
