package main

import (
	"net/http"
	"testing"
	"time"
)

// TestApproxSolveEndpoint: /v1/solve?approx=1 answers with per-vertex
// TopK(w) intervals from the sketch tier instead of the exact region,
// and the vertex count matches the query box's geometry.
func TestApproxSolveEndpoint(t *testing.T) {
	ts, _ := testServer(t, 80, time.Minute)

	resp := postJSON(t, ts.URL+"/v1/solve?approx=1", queryJSON{K: 3, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Generation uint64             `json:"generation"`
		Approx     bool               `json:"approx"`
		K          int                `json:"k"`
		Vertices   []approxVertexJSON `json:"vertices"`
		Certified  int                `json:"certified"`
		Fallbacks  int                `json:"fallbacks"`
	}
	decodeJSON(t, resp, &out)
	if !out.Approx || out.K != 3 {
		t.Fatalf("approx=%v k=%d, want true/3", out.Approx, out.K)
	}
	if len(out.Vertices) == 0 {
		t.Fatal("no vertex intervals returned")
	}
	if out.Certified+out.Fallbacks != len(out.Vertices) {
		t.Fatalf("certified %d + fallbacks %d != %d vertices", out.Certified, out.Fallbacks, len(out.Vertices))
	}
	for i, v := range out.Vertices {
		if len(v.W) != 2 {
			t.Fatalf("vertex %d has %d preference components, want 2", i, len(v.W))
		}
		if v.Lo > v.Hi {
			t.Fatalf("vertex %d interval inverted: [%v, %v]", i, v.Lo, v.Hi)
		}
	}

	// Invalid queries fail the same validation as the exact route.
	resp = postJSON(t, ts.URL+"/v1/solve?approx=1", queryJSON{K: 0, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 status = %d, want 400", resp.StatusCode)
	}
}

// TestStatsExposeSketchCounters: the aggregate stats route surfaces the
// sketch tier's occupancy and counters per dataset and in the totals.
func TestStatsExposeSketchCounters(t *testing.T) {
	ts, _ := testServer(t, 80, time.Minute)

	// Drive the approximate path once so the counters move.
	resp := postJSON(t, ts.URL+"/v1/solve?approx=1", queryJSON{K: 3, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}})
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Datasets []datasetStatsJSON `json:"datasets"`
		Totals   statsTotals        `json:"totals"`
	}
	decodeJSON(t, resp, &out)
	if len(out.Datasets) != 1 {
		t.Fatalf("got %d datasets, want 1", len(out.Datasets))
	}
	ds := out.Datasets[0]
	if ds.SketchEntries == 0 {
		t.Error("sketch_entries = 0 on a populated dataset")
	}
	if ds.SketchCert+ds.SketchFalls == 0 {
		t.Error("approximate queries left no trace in sketch counters")
	}
	if out.Totals.SketchEntries != ds.SketchEntries {
		t.Errorf("totals sketch_entries %d != dataset %d", out.Totals.SketchEntries, ds.SketchEntries)
	}
}
