package main

// Watch-endpoint suite: SSE framing, live delivery over mutations,
// suppression of dominated inserts on the wire, mid-stream dataset
// drop, the per-tenant subscription cap, restart-with-replay
// resubscribe on a durable registry, and the 404/405 JSON error
// contract shared with every other route.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// watchTestServer wraps an httptest server around a registry with the
// watch-aware handler and cleans it up with the test.
func watchTestServer(t *testing.T, reg *toprr.Registry) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(reg, time.Minute, 32<<20))
	t.Cleanup(ts.Close)
	return ts
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// sseStream incrementally parses an SSE response body.
type sseStream struct {
	body io.Closer
	sc   *bufio.Scanner
}

func openStream(t *testing.T, url string) *sseStream {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("watch stream: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return &sseStream{body: resp.Body, sc: bufio.NewScanner(resp.Body)}
}

func (s *sseStream) close() { s.body.Close() }

// next reads one event, skipping keepalive comments. It blocks on the
// network; callers bound it with the response deadline or test timeout.
func (s *sseStream) next(t *testing.T) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if ev.name != "" || ev.data != "" {
				return ev, true
			}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			ev.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[len("data: "):]
		}
	}
	return sseEvent{}, false
}

// watchURL builds the watch route for the default test dataset: k=2
// over a wide preference box in d=3 (2-dimensional preference space).
func watchURL(base string, extra string) string {
	return base + "/v1/datasets/default/watch?k=2&lo=0.05,0.05&hi=0.9,0.9" + extra
}

// regionJSON is the wire form this suite asserts on.
type regionJSON struct {
	Generation  uint64     `json:"generation"`
	Fingerprint string     `json:"fingerprint"`
	Initial     bool       `json:"initial"`
	Result      resultJSON `json:"result"`
}

func decodeRegion(t *testing.T, ev sseEvent) regionJSON {
	t.Helper()
	if ev.name != "region" {
		t.Fatalf("event %q (%s), want region", ev.name, ev.data)
	}
	var rj regionJSON
	if err := json.Unmarshal([]byte(ev.data), &rj); err != nil {
		t.Fatalf("region data %q: %v", ev.data, err)
	}
	return rj
}

// TestWatchEndpointStream: the stream opens with an initial region
// event, stays silent across dominated inserts, and delivers a
// generation-stamped region delta after a cracking insert.
func TestWatchEndpointStream(t *testing.T) {
	ts, eng := testServer(t, 120, time.Minute)
	st := openStream(t, watchURL(ts.URL, "&debounce=5ms"))
	defer st.close()

	ev, ok := st.next(t)
	if !ok {
		t.Fatal("stream ended before the initial event")
	}
	initial := decodeRegion(t, ev)
	if !initial.Initial {
		t.Fatalf("first event not initial: %+v", initial)
	}
	if initial.Fingerprint == "" || len(initial.Result.Constraints) == 0 {
		t.Fatalf("initial event incomplete: %+v", initial)
	}
	if initial.Generation != uint64(eng.Generation()) {
		t.Fatalf("initial generation %d, want %d", initial.Generation, eng.Generation())
	}

	// Dominated inserts: provably region-neutral, so nothing may arrive.
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := eng.Apply(ctx, []toprr.Op{toprr.Insert(vec.New(3))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.WatchSettle(ctx); err != nil {
		t.Fatal(err)
	}

	// A cracking insert: the next frame on the wire must be its region,
	// not anything from the dominated batch.
	if _, err := eng.Apply(ctx, []toprr.Op{toprr.Insert(vec.Of(0.99, 0.98, 0.97))}); err != nil {
		t.Fatal(err)
	}
	ev, ok = st.next(t)
	if !ok {
		t.Fatal("stream ended before the cracking event")
	}
	delta := decodeRegion(t, ev)
	if delta.Initial {
		t.Fatalf("second event claims initial: %+v", delta)
	}
	if delta.Generation != uint64(eng.Generation()) {
		t.Fatalf("delta generation %d, want %d (the cracked generation)", delta.Generation, eng.Generation())
	}
	if delta.Fingerprint == initial.Fingerprint {
		t.Fatal("cracking insert delivered an unmoved fingerprint")
	}
	if sup := eng.WatchStats().Suppressed; sup < 5 {
		t.Errorf("Suppressed = %d, want >= 5 (the dominated batch)", sup)
	}
}

// TestWatchEndpointDrop: dropping the dataset under a live stream ends
// it with a terminal bye event and a clean close, not a hang or a
// truncated frame.
func TestWatchEndpointDrop(t *testing.T) {
	reg, _ := testRegistry(t, 80)
	ts := watchTestServer(t, reg)
	st := openStream(t, watchURL(ts.URL, ""))
	defer st.close()

	if ev, ok := st.next(t); !ok || ev.name != "region" {
		t.Fatalf("initial event = %+v ok=%v", ev, ok)
	}

	done := make(chan error, 1)
	go func() { done <- reg.Drop("default") }()

	ev, ok := st.next(t)
	if !ok || ev.name != "bye" {
		t.Fatalf("after drop: event %+v ok=%v, want bye", ev, ok)
	}
	if _, ok := st.next(t); ok {
		t.Fatal("stream continued past bye")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drop: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drop blocked on the live stream")
	}
}

// TestWatchEndpointCap: the per-tenant subscription cap turns the
// (cap+1)-th stream into a JSON 429 while the first streams stay live.
func TestWatchEndpointCap(t *testing.T) {
	reg, err := toprr.NewRegistry(toprr.WithRegistryWatchCap(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	if _, err := reg.Create("default", testPts(60)); err != nil {
		t.Fatal(err)
	}
	ts := watchTestServer(t, reg)

	var streams []*sseStream
	for i := 0; i < 2; i++ {
		st := openStream(t, watchURL(ts.URL, ""))
		defer st.close()
		if ev, ok := st.next(t); !ok || ev.name != "region" {
			t.Fatalf("stream %d: initial event = %+v", i, ev)
		}
		streams = append(streams, st)
	}

	resp, err := http.Get(watchURL(ts.URL, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap watch: status %d, want 429", resp.StatusCode)
	}
	var ej errorJSON
	decodeJSON(t, resp, &ej)
	if ej.Error == "" {
		t.Fatal("429 body carries no error field")
	}

	// Closing one stream frees its slot (the daemon closes the
	// subscription when the client goes away).
	streams[0].close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(watchURL(ts.URL, ""))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchEndpointRestartResubscribe: a durable daemon restarts, the
// dataset recovers by WAL replay, and a fresh subscription over the
// restarted daemon sees exactly the region the pre-restart mutations
// produced.
func TestWatchEndpointRestartResubscribe(t *testing.T) {
	root := t.TempDir()
	ts, reg := durableServer(t, root, testPts(60), toprr.PersistConfig{})

	st := openStream(t, watchURL(ts.URL, "&debounce=0s"))
	if ev, ok := st.next(t); !ok || ev.name != "region" {
		t.Fatalf("initial event = %+v", ev)
	}
	// Mutate through the engine: a cracking insert that must survive the
	// restart via WAL replay.
	eng, err := reg.Get("default")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), []toprr.Op{toprr.Insert(vec.Of(0.97, 0.96, 0.95))}); err != nil {
		t.Fatal(err)
	}
	ev, ok := st.next(t)
	if !ok {
		t.Fatal("no event for the cracking insert")
	}
	preFP := decodeRegion(t, ev).Fingerprint
	preGen := uint64(eng.Generation())
	st.close()
	ts.Close()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same root: recovery replays the WAL; the engine
	// closing must have ended the old hub cleanly (no leaked goroutine
	// holds the WAL).
	ts2, reg2 := durableServer(t, root, testPts(60), toprr.PersistConfig{})
	defer reg2.Close()
	defer ts2.Close()
	st2 := openStream(t, ts2.URL+"/v1/datasets/default/watch?k=2&lo=0.05,0.05&hi=0.9,0.9")
	defer st2.close()
	ev2, ok := st2.next(t)
	if !ok {
		t.Fatal("restarted stream ended before its initial event")
	}
	re := decodeRegion(t, ev2)
	if !re.Initial {
		t.Fatalf("restarted stream's first event not initial: %+v", re)
	}
	if re.Generation != preGen {
		t.Fatalf("restarted initial generation %d, want replayed %d", re.Generation, preGen)
	}
	if re.Fingerprint != preFP {
		t.Fatalf("restarted region fingerprint %s, want %s (same dataset, same query)", re.Fingerprint, preFP)
	}
}

// TestWatchEndpointErrors: the watch route honors the daemon-wide JSON
// error contract — 405 on non-GET, 404 for unknown datasets, 400 for
// malformed parameters — and never falls back to mux defaults.
func TestWatchEndpointErrors(t *testing.T) {
	ts, _ := testServer(t, 40, time.Minute)
	cases := []struct {
		name   string
		method string
		url    string
		want   int
	}{
		{"post is 405", http.MethodPost, watchURL(ts.URL, ""), http.StatusMethodNotAllowed},
		{"delete is 405", http.MethodDelete, watchURL(ts.URL, ""), http.StatusMethodNotAllowed},
		{"unknown dataset 404", http.MethodGet, ts.URL + "/v1/datasets/nope/watch?k=2&lo=0.1,0.1&hi=0.9,0.9", http.StatusNotFound},
		{"missing k 400", http.MethodGet, ts.URL + "/v1/datasets/default/watch?lo=0.1,0.1&hi=0.9,0.9", http.StatusBadRequest},
		{"bad lo 400", http.MethodGet, ts.URL + "/v1/datasets/default/watch?k=2&lo=zap&hi=0.9,0.9", http.StatusBadRequest},
		{"wrong dims 400", http.MethodGet, ts.URL + "/v1/datasets/default/watch?k=2&lo=0.1&hi=0.9", http.StatusBadRequest},
		{"k too large 400", http.MethodGet, ts.URL + "/v1/datasets/default/watch?k=4000&lo=0.1,0.1&hi=0.9,0.9", http.StatusBadRequest},
		{"bad debounce 400", http.MethodGet, watchURL(ts.URL, "&debounce=-3s"), http.StatusBadRequest},
		{"huge debounce 400", http.MethodGet, watchURL(ts.URL, "&debounce=2h"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.url, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.want {
				resp.Body.Close()
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			var ej errorJSON
			decodeJSON(t, resp, &ej)
			if ej.Error == "" {
				t.Error("error body missing the error field")
			}
		})
	}
}

// TestWatchEndpointServerDrain: shutting the HTTP server down ends live
// streams with a bye frame via the RegisterOnShutdown hook instead of
// hanging until the drain budget expires.
func TestWatchEndpointServerDrain(t *testing.T) {
	reg, _ := testRegistry(t, 60)
	api := newServer(reg, time.Minute, 32<<20)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	st := openStream(t, watchURL(ts.URL, ""))
	defer st.close()
	if ev, ok := st.next(t); !ok || ev.name != "region" {
		t.Fatalf("initial event = %+v", ev)
	}

	api.drainWatches()
	ev, ok := st.next(t)
	if !ok || ev.name != "bye" {
		t.Fatalf("after drain: event %+v ok=%v, want bye", ev, ok)
	}
	var bye struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(ev.data), &bye); err != nil || bye.Reason == "" {
		t.Fatalf("bye data %q: %v", ev.data, err)
	}
}
