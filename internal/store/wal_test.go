package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"toprr/internal/vec"
)

// openT opens a durable store and fails the test on error.
func openT(t *testing.T, cfg PersistConfig, boot []vec.Vector) *Store {
	t.Helper()
	s, err := Open(cfg, boot)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// samePoints asserts two option sets are identical, slot by slot.
func samePoints(t *testing.T, got *Store, want []vec.Vector) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("len = %d, want %d", got.Len(), len(want))
	}
	sc := got.Snapshot().Scorer
	for i, w := range want {
		if !sc.Point(i).Equal(w, 0) {
			t.Fatalf("slot %d = %v, want %v", i, sc.Point(i), w)
		}
	}
}

// model mirrors the store's batch semantics on a plain slice.
type model struct {
	pts []vec.Vector
}

func (m *model) apply(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			m.pts = append(m.pts, op.Point.Clone())
		case OpDelete:
			last := len(m.pts) - 1
			m.pts[op.Index] = m.pts[last]
			m.pts = m.pts[:last]
		case OpUpdate:
			m.pts[op.Index] = op.Point.Clone()
		}
	}
}

func (m *model) clone() []vec.Vector {
	out := make([]vec.Vector, len(m.pts))
	for i, p := range m.pts {
		out[i] = p.Clone()
	}
	return out
}

// randomBatch builds a valid batch against a dataset of n options.
func randomBatch(rng *rand.Rand, n, d, maxOps int) []Op {
	nops := 1 + rng.Intn(maxOps)
	ops := make([]Op, 0, nops)
	for i := 0; i < nops; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64()
		}
		switch k := rng.Intn(3); {
		case k == 0 || n <= 1: // insert (and never delete the last option)
			ops = append(ops, Insert(p))
			n++
		case k == 1:
			ops = append(ops, Delete(rng.Intn(n)))
			n--
		default:
			ops = append(ops, Update(rng.Intn(n), p))
		}
	}
	return ops
}

func TestOpenBootstrapsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir}
	s := openT(t, cfg, pts3())
	if s.Generation() != 1 || s.Len() != 3 {
		t.Fatalf("bootstrap gen=%d len=%d", s.Generation(), s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(1))); err != nil {
		t.Fatalf("base snapshot not written: %v", err)
	}

	if _, _, err := s.Apply([]Op{Insert(vec.Of(0.3, 0.3)), Update(0, vec.Of(0.15, 0.85))}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply([]Op{Delete(1)}); err != nil {
		t.Fatal(err)
	}
	want := s.Snapshot()
	wantLog := s.Log(0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a decoy bootstrap dataset: recovered state must win.
	r := openT(t, cfg, []vec.Vector{vec.Of(0.99, 0.99)})
	defer r.Close()
	if r.Generation() != want.Gen {
		t.Fatalf("recovered generation = %d, want %d", r.Generation(), want.Gen)
	}
	samePoints(t, r, want.Scorer.Points())
	gotLog := r.Log(0)
	if len(gotLog) != len(wantLog) {
		t.Fatalf("recovered log has %d entries, want %d", len(gotLog), len(wantLog))
	}
	for i := range gotLog {
		if gotLog[i].Seq != wantLog[i].Seq || gotLog[i].Gen != wantLog[i].Gen ||
			gotLog[i].Op.Kind != wantLog[i].Op.Kind || gotLog[i].Moved != wantLog[i].Moved {
			t.Fatalf("log[%d] = %+v, want %+v", i, gotLog[i], wantLog[i])
		}
	}
}

func TestRecoverWithoutClose(t *testing.T) {
	// A crash is the absence of Close: under SyncAlways every
	// acknowledged batch must still be on disk. Process death releases
	// the directory flock; simulate exactly that by closing only the
	// lock fd, leaving the WAL file handle dangling like a crash would.
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir, Sync: SyncAlways}
	s := openT(t, cfg, pts3())
	if _, _, err := s.Apply([]Op{Insert(vec.Of(0.4, 0.4))}); err != nil {
		t.Fatal(err)
	}
	want := s.Snapshot()
	s.lock.Close() // the kernel does this on process death

	r := openT(t, cfg, nil)
	defer r.Close()
	if r.Generation() != want.Gen {
		t.Fatalf("recovered generation = %d, want %d", r.Generation(), want.Gen)
	}
	samePoints(t, r, want.Scorer.Points())
}

// TestOpenLocksDirectory: a second store over the same data directory
// must fail fast rather than interleave WAL writes with the first.
func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir}
	s := openT(t, cfg, pts3())
	if _, err := Open(cfg, nil); err == nil {
		t.Fatal("second Open on a held directory must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, cfg, nil) // the lock releases with Close
	r.Close()
}

// TestGenerationGapRefusesDestructiveRecovery: when the WAL's first
// record does not chain onto the loaded base snapshot (here: the newest
// snapshot was lost and recovery fell back to an older one), Open must
// refuse and leave the segment bytes intact — truncating them would
// destroy the only remaining record of the later generations.
func TestGenerationGapRefusesDestructiveRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir, CompactOps: 4, CompactBytes: 1 << 30, SegmentBytes: 1 << 30}
	s := openT(t, cfg, pts3())
	base, err := os.ReadFile(filepath.Join(dir, snapshotName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Four batches trigger compaction (watermark generation 5, snap-1
	// deleted); a fifth lands in the fresh segment as generation 6.
	for i := 0; i < 5; i++ {
		if _, _, err := s.Apply([]Op{Insert(vec.Of(0.2, 0.8))}); err != nil {
			t.Fatal(err)
		}
	}
	if s.PersistStats().LastCompaction != 5 {
		t.Fatalf("compaction watermark = %d, want 5", s.PersistStats().LastCompaction)
	}
	s.Close()

	// Lose the watermark snapshot; resurrect the generation-1 base. The
	// segment's first record (generation 6) no longer chains onto it.
	if err := os.Remove(filepath.Join(dir, snapshotName(5))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotName(1)), base, 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	before := segs[0].size

	if _, err := Open(cfg, nil); err == nil {
		t.Fatal("generation gap must refuse to open")
	}
	after, err := os.Stat(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before {
		t.Fatalf("refusal still truncated the segment: %d -> %d bytes", before, after.Size())
	}
}

// TestBootstrapRefusesStaleWAL: WAL segments without any base snapshot
// describe a dataset we no longer have; bootstrapping a fresh dataset
// and replaying them onto it would corrupt it silently, so Open must
// refuse.
func TestBootstrapRefusesStaleWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir}
	s := openT(t, cfg, pts3())
	if _, _, err := s.Apply([]Op{Insert(vec.Of(0.3, 0.3))}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the half-reset: snapshots gone, segments survive.
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshots: %v %v", snaps, err)
	}
	for _, p := range snaps {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(cfg, pts3()); err == nil {
		t.Fatal("bootstrap over stale WAL segments must be refused")
	}
}

func TestApplyAfterCloseFails(t *testing.T) {
	s := openT(t, PersistConfig{Dir: t.TempDir()}, pts3())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, _, err := s.Apply([]Op{Insert(vec.Of(0.1, 0.1))}); err != ErrClosed {
		t.Fatalf("apply after close = %v, want ErrClosed", err)
	}
	if s.Len() != 3 { // reads keep serving
		t.Fatalf("len after close = %d", s.Len())
	}
}

// TestTornWriteOracle is the crash-recovery oracle of the acceptance
// criteria: a random op sequence is applied and the per-generation
// states remembered; the WAL is then truncated mid-record (a torn
// write) at several depths, and each reopen must land exactly on the
// state of the last complete batch.
func TestTornWriteOracle(t *testing.T) {
	const (
		d       = 3
		batches = 25
		seed    = 42
	)
	rng := rand.New(rand.NewSource(seed))
	boot := []vec.Vector{vec.Of(0.1, 0.2, 0.3), vec.Of(0.5, 0.5, 0.5), vec.Of(0.9, 0.8, 0.7)}

	dir := t.TempDir()
	// Thresholds high enough that nothing compacts: the whole history
	// stays in one WAL segment and every truncation point is exercised.
	cfg := PersistConfig{Dir: dir, CompactBytes: 1 << 30, CompactOps: 1 << 30, SegmentBytes: 1 << 30}
	s := openT(t, cfg, boot)

	m := &model{}
	m.pts = append(m.pts, boot...)
	states := map[Generation][]vec.Vector{1: m.clone()}
	for b := 0; b < batches; b++ {
		ops := randomBatch(rng, len(m.pts), d, 4)
		snap, _, err := s.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		m.apply(ops)
		states[snap.Gen] = m.clone()
	}
	finalGen := s.Generation()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %d", len(segs))
	}
	segPath := segs[0].path

	// Record boundaries: scan once to learn where each batch ends.
	var ends []int64
	var gens []Generation
	if _, torn, err := scanSegment(segPath, func(g Generation, _ uint64, _ []Op) error {
		gens = append(gens, g)
		return nil
	}); err != nil || torn {
		t.Fatalf("pre-scan: torn=%v err=%v", torn, err)
	}
	off := int64(len(walMagic))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if int64(len(data)) == off {
			break
		}
		length := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += walHeaderSize + length
		ends = append(ends, off)
	}
	if len(ends) != batches {
		t.Fatalf("found %d records, want %d", len(ends), batches)
	}

	// Tear the log mid-record at several depths: after the tear the
	// store must recover the prefix up to the last complete batch.
	for _, cut := range []int{batches - 1, batches / 2, 1} {
		// A cut strictly inside record cut (0-based): any size in
		// (ends[cut-1], ends[cut]) tears it.
		lo := int64(len(walMagic))
		if cut > 0 {
			lo = ends[cut-1]
		}
		tearAt := lo + (ends[cut]-lo)/2
		work := t.TempDir()
		copyFile(t, segPath, filepath.Join(work, filepath.Base(segPath)))
		copyFile(t, filepath.Join(dir, snapshotName(1)), filepath.Join(work, snapshotName(1)))
		if err := os.Truncate(filepath.Join(work, filepath.Base(segPath)), tearAt); err != nil {
			t.Fatal(err)
		}

		r := openT(t, PersistConfig{Dir: work}, nil)
		wantGen := gens[cut] - 1 // the torn batch's predecessor
		if r.Generation() != wantGen {
			t.Fatalf("cut %d: recovered generation %d, want %d (final %d)", cut, r.Generation(), wantGen, finalGen)
		}
		samePoints(t, r, states[wantGen])

		// The store must be writable after recovery: the tear was
		// truncated away, so new batches append cleanly and survive
		// another reopen.
		if _, _, err := r.Apply([]Op{Insert(vec.Of(0.42, 0.42, 0.42))}); err != nil {
			t.Fatalf("cut %d: apply after recovery: %v", cut, err)
		}
		gen2, len2 := r.Generation(), r.Len()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2 := openT(t, PersistConfig{Dir: work}, nil)
		if r2.Generation() != gen2 || r2.Len() != len2 {
			t.Fatalf("cut %d: second recovery gen=%d len=%d, want gen=%d len=%d",
				cut, r2.Generation(), r2.Len(), gen2, len2)
		}
		r2.Close()
	}
}

// TestTornMagicSegmentIsReplaced: when the tear eats the segment's own
// 8-byte magic, recovery must drop the file and start a fresh one —
// reopening the headerless file for append would make the *next* boot
// discard every batch acknowledged after recovery.
func TestTornMagicSegmentIsReplaced(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir, CompactBytes: 1 << 30, CompactOps: 1 << 30, SegmentBytes: 1 << 30}
	s := openT(t, cfg, pts3())
	if _, _, err := s.Apply([]Op{Insert(vec.Of(0.3, 0.3))}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	// Tear inside the magic itself (e.g. a zero-length file after a
	// crashed create): the whole segment is unusable.
	if err := os.Truncate(segs[0].path, 3); err != nil {
		t.Fatal(err)
	}

	r := openT(t, cfg, nil)
	if r.Generation() != 1 || r.Len() != 3 {
		t.Fatalf("recovered gen=%d len=%d, want the base snapshot", r.Generation(), r.Len())
	}
	// Acknowledged post-recovery batches must survive the next boot.
	if _, _, err := r.Apply([]Op{Insert(vec.Of(0.7, 0.7))}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openT(t, cfg, nil)
	defer r2.Close()
	if r2.Generation() != 2 || r2.Len() != 4 {
		t.Fatalf("second boot gen=%d len=%d, want 2 with 4 options", r2.Generation(), r2.Len())
	}
	if got := r2.Snapshot().Scorer.Point(3); !got.Equal(vec.Of(0.7, 0.7), 0) {
		t.Fatalf("post-recovery insert lost: slot 3 = %v", got)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSealedSegmentRefusesOpen: a tear can only legitimately
// live in the final segment (appends are sequential, segments fsync
// before their successor exists), so corruption in an earlier one is
// damage to acknowledged batches — Open must refuse, not truncate away
// every later segment.
func TestCorruptSealedSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir, SegmentBytes: 128, CompactBytes: 1 << 30, CompactOps: 1 << 30}
	s := openT(t, cfg, pts3())
	for i := 0; i < 10; i++ {
		if _, _, err := s.Apply([]Op{Insert(vec.Of(0.25, 0.75))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.PersistStats().WALSegments; got < 2 {
		t.Fatalf("need rolled segments, got %d", got)
	}
	s.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff // corrupt the first (sealed) segment
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(cfg, nil); err == nil {
		t.Fatal("mid-WAL corruption must refuse to open")
	}
	// Every segment survives for inspection.
	after, err := listSegments(dir)
	if err != nil || len(after) != len(segs) {
		t.Fatalf("segments after refusal: %v %v (want %d)", after, err, len(segs))
	}
}

func TestCorruptMiddleRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir, CompactBytes: 1 << 30, CompactOps: 1 << 30, SegmentBytes: 1 << 30}
	s := openT(t, cfg, pts3())
	for i := 0; i < 5; i++ {
		if _, _, err := s.Apply([]Op{Insert(vec.Of(0.2, 0.2))}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	// Flip a payload byte around the middle of the file: the checksum of
	// that record fails, and replay must stop at its predecessor rather
	// than serve corrupt data.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, cfg, nil)
	defer r.Close()
	if g := r.Generation(); g < 1 || g >= 6 {
		t.Fatalf("recovered generation %d, want a strict prefix of the 6", g)
	}
	if r.Len() != int(r.Generation())+2 { // one insert per generation after gen 1
		t.Fatalf("recovered len %d inconsistent with generation %d", r.Len(), r.Generation())
	}
}

// TestCompactionBoundsReplay asserts the acceptance criterion that WAL
// replay cost stays bounded: once the op threshold is crossed, the store
// writes a fresh base snapshot, truncates the replayed segments and
// resumes with an empty WAL.
func TestCompactionBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir, CompactOps: 8, CompactBytes: 1 << 30, SegmentBytes: 1 << 10}
	s := openT(t, cfg, pts3())

	m := &model{}
	m.pts = append(m.pts, pts3()...)
	rng := rand.New(rand.NewSource(7))
	for b := 0; b < 10; b++ {
		ops := randomBatch(rng, len(m.pts), 2, 3)
		if _, _, err := s.Apply(ops); err != nil {
			t.Fatal(err)
		}
		m.apply(ops)
	}

	ps := s.PersistStats()
	if !ps.Persistent {
		t.Fatal("store should report persistence")
	}
	if ps.LastCompaction <= 1 {
		t.Fatalf("no compaction happened: %+v", ps)
	}
	if ps.WALSegments != 1 {
		t.Fatalf("compaction left %d segments, want 1", ps.WALSegments)
	}
	if s.walOps >= 8+3 {
		t.Fatalf("walOps = %d not reset by compaction", s.walOps)
	}
	// On disk: exactly one snapshot (the watermark) and one segment.
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v %v", snaps, err)
	}
	if snaps[0] != filepath.Join(dir, snapshotName(ps.LastCompaction)) {
		t.Fatalf("snapshot %s, want generation %d", snaps[0], ps.LastCompaction)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments on disk: %v %v", segs, err)
	}

	want := s.Snapshot()
	s.Close()
	r := openT(t, cfg, nil)
	defer r.Close()
	if r.Generation() != want.Gen {
		t.Fatalf("recovered generation %d, want %d", r.Generation(), want.Gen)
	}
	samePoints(t, r, want.Scorer.Points())
}

func TestSegmentRollAndMultiSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments, compaction effectively off: rolls accumulate.
	cfg := PersistConfig{Dir: dir, SegmentBytes: 128, CompactBytes: 1 << 30, CompactOps: 1 << 30}
	s := openT(t, cfg, pts3())
	for i := 0; i < 12; i++ {
		if _, _, err := s.Apply([]Op{Insert(vec.Of(0.25, 0.75))}); err != nil {
			t.Fatal(err)
		}
	}
	if ps := s.PersistStats(); ps.WALSegments < 2 {
		t.Fatalf("expected rolled segments, got %+v", ps)
	}
	want := s.Snapshot()
	s.Close()

	r := openT(t, cfg, nil)
	defer r.Close()
	if r.Generation() != want.Gen {
		t.Fatalf("recovered generation %d, want %d", r.Generation(), want.Gen)
	}
	samePoints(t, r, want.Scorer.Points())
}

// TestConcurrentReadsDuringPersistentWrites drives readers (snapshot
// pins, stats) against a writer whose batches trigger segment rolls and
// compactions, under -race in CI: the WAL fsync and the compaction
// cycle must never hold the lock readers block on.
func TestConcurrentReadsDuringPersistentWrites(t *testing.T) {
	cfg := PersistConfig{Dir: t.TempDir(), CompactOps: 16, CompactBytes: 1 << 30, SegmentBytes: 256}
	s := openT(t, cfg, pts3())
	defer s.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := s.Snapshot()
				if snap.Scorer.Len() < 3 {
					panic("impossible shrink")
				}
				_ = s.PersistStats()
				_, _ = s.GCStats()
				_ = s.Log(0)
			}
		}()
	}
	for i := 0; i < 80; i++ {
		if _, _, err := s.Apply([]Op{Insert(vec.Of(0.4, 0.6))}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if ps := s.PersistStats(); ps.LastCompaction <= 1 || ps.CompactError != "" {
		t.Fatalf("persist stats after concurrent run: %+v", ps)
	}
}

func TestSyncNoneStillRecoversOnClose(t *testing.T) {
	dir := t.TempDir()
	cfg := PersistConfig{Dir: dir, Sync: SyncNone}
	s := openT(t, cfg, pts3())
	if _, _, err := s.Apply([]Op{Insert(vec.Of(0.6, 0.6))}); err != nil {
		t.Fatal(err)
	}
	want := s.Snapshot()
	if err := s.Close(); err != nil { // Close syncs even under SyncNone
		t.Fatal(err)
	}
	r := openT(t, cfg, nil)
	defer r.Close()
	samePoints(t, r, want.Scorer.Points())
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"always": SyncAlways, "": SyncAlways, "none": SyncNone} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("bad mode should error")
	}
	if SyncAlways.String() != "always" || SyncNone.String() != "none" {
		t.Error("String round-trip broken")
	}
}

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	recs := []AppliedOp{
		{Op: Op{Kind: OpInsert, Point: vec.Of(0.1, 0.2)}},
		// A stray payload on a delete must not reach the wire ("deletes
		// carry dim 0" in the documented record format).
		{Op: Op{Kind: OpDelete, Index: 3, Point: vec.Of(0.5, 0.5)}},
		{Op: Op{Kind: OpUpdate, Index: 1, Point: vec.Of(0.9, 0.8)}},
	}
	gen, firstSeq, ops, err := decodeBatch(encodeBatch(7, 21, recs))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 || firstSeq != 21 || len(ops) != 3 {
		t.Fatalf("gen=%d seq=%d ops=%d", gen, firstSeq, len(ops))
	}
	for i, op := range ops {
		if op.Kind != recs[i].Op.Kind || op.Index != recs[i].Op.Index {
			t.Errorf("op %d = %+v", i, op)
		}
		if op.Kind == OpDelete {
			if op.Point != nil {
				t.Errorf("delete decoded with payload %v", op.Point)
			}
			continue
		}
		if !op.Point.Equal(recs[i].Op.Point, 0) {
			t.Errorf("op %d point = %v", i, op.Point)
		}
	}
	if _, _, _, err := decodeBatch([]byte{1, 2, 3}); err == nil {
		t.Error("short payload should error")
	}
}

func TestDeleteOpLogCarriesNoPayload(t *testing.T) {
	s := mustNew(t, pts3())
	buf := vec.Of(0.1, 0.1) // caller reuses this buffer after Apply
	if _, _, err := s.Apply([]Op{{Kind: OpDelete, Index: 0, Point: buf}}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 0.999
	log := s.Log(0)
	if len(log) != 1 || log[0].Op.Point != nil {
		t.Fatalf("delete log entry = %+v, want nil payload", log[0])
	}
}

func TestGCStatsTracksGenerations(t *testing.T) {
	s := mustNew(t, pts3())
	live, bytes := s.GCStats()
	if live != 1 || bytes <= 0 {
		t.Fatalf("initial GCStats = %d, %d", live, bytes)
	}
	pinned := s.Snapshot() // keeps generation 1 alive
	for i := 0; i < 3; i++ {
		if _, _, err := s.Apply([]Op{Insert(vec.Of(0.3, 0.3))}); err != nil {
			t.Fatal(err)
		}
	}
	if live, _ := s.GCStats(); live < 2 {
		t.Fatalf("live generations = %d with a pinned snapshot, want >= 2", live)
	}
	_ = pinned.Scorer.Len() // keep the pin alive up to here

	// Drop the pin: the collector reclaims the unreferenced generations
	// and the counters come back down (trailing the GC by design).
	pinned = Snapshot{}
	_ = pinned
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if live, _ := s.GCStats(); live == 1 {
			break
		}
		if time.Now().After(deadline) {
			live, bytes := s.GCStats()
			t.Fatalf("generations not reclaimed: live=%d bytes=%d", live, bytes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
